"""RunReport accounting tests: overhead fraction, checkpoint intervals, and
the per-phase breakdown in blocking vs asynchronous checkpointing modes."""

import pytest

from repro.core.config import ACRConfig
from repro.core.framework import ACR, RunReport
from repro.core.events import TimelineKind
from repro.harness.experiment import run_acr_experiment


def run_small(*, async_checkpointing=False, **kwargs):
    config = ACRConfig(checkpoint_interval=2.0, total_iterations=60,
                       app_scale=1e-4, seed=1,
                       async_checkpointing=async_checkpointing)
    acr = ACR("jacobi3d-charm", nodes_per_replica=2, config=config, **kwargs)
    report = acr.run(until=10_000.0, max_events=100_000_000)
    return acr, report


class TestOverheadFraction:
    def test_zero_before_run(self):
        assert RunReport().overhead_fraction == 0.0

    def test_matches_components(self):
        _, report = run_small()
        assert report.completed
        expected = ((report.checkpoint_time + report.recovery_time)
                    / report.final_time)
        assert report.overhead_fraction == pytest.approx(expected)
        assert 0.0 < report.overhead_fraction < 1.0

    def test_synthetic_values(self):
        r = RunReport(final_time=100.0, checkpoint_time=6.0,
                      recovery_time=4.0)
        assert r.overhead_fraction == pytest.approx(0.1)


class TestCheckpointIntervals:
    def test_periodic_gaps_near_interval(self):
        _, report = run_small()
        intervals = report.timeline.checkpoint_intervals()
        done = report.timeline.times_of(TimelineKind.CHECKPOINT_DONE)
        assert len(intervals) == len(done) - 1
        # Interior gaps track the configured 2 s period (the final
        # at-the-cap checkpoint may come early).
        for gap in intervals[:-1]:
            assert gap == pytest.approx(2.0, rel=0.25)

    def test_empty_without_checkpoints(self):
        assert RunReport().timeline.checkpoint_intervals() == []


class TestPhaseBreakdown:
    def test_blocking_sum_is_exact(self):
        _, report = run_small()
        assert report.phase_times  # populated
        assert report.phase_time_sum == pytest.approx(
            report.checkpoint_time + report.recovery_time, rel=1e-9)
        # Blocking mode: the application is blocked for the whole thing.
        assert report.checkpoint_blocking_time == pytest.approx(
            report.checkpoint_time)

    def test_async_blocks_only_local_pack(self):
        _, blocking = run_small(async_checkpointing=False)
        _, async_rep = run_small(async_checkpointing=True)
        assert async_rep.completed
        # Same exact-decomposition invariant in asynchronous mode...
        assert async_rep.phase_time_sum == pytest.approx(
            async_rep.checkpoint_time + async_rep.recovery_time, rel=1e-9)
        # ...but the app only blocks for the local pack, so blocking time
        # shrinks strictly below the blocking-mode figure.
        assert (async_rep.checkpoint_blocking_time
                < blocking.checkpoint_blocking_time)
        assert (async_rep.phase_times["checkpoint.local"]
                == pytest.approx(async_rep.checkpoint_blocking_time))

    def test_recovery_phases_appear_under_faults(self):
        result = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=80,
            checkpoint_interval=2.0, scheme="strong", hard_mtbf=20.0,
            horizon=600.0, seed=4)
        report = result.report
        assert report.recoveries.get("strong", 0) >= 1
        assert report.phase_times.get("recovery.strong", 0.0) > 0.0
        assert report.phase_time_sum == pytest.approx(
            report.checkpoint_time + report.recovery_time, rel=1e-9)
