"""Failure-prediction tests (§2.2 proactive checkpointing)."""

import pytest

from repro.core import ACR, ACRConfig
from repro.core.prediction import FailurePredictor, PredictionTrace
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.model import ResilienceScheme
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def plan_with_faults(times, nodes=4):
    return InjectionPlan([
        FaultEvent(time=t, kind=FaultKind.HARD, replica=i % 2,
                   node_id=i % nodes)
        for i, t in enumerate(times)
    ])


class TestPredictor:
    def test_perfect_predictor_alarms_every_fault(self):
        plan = plan_with_faults([10.0, 20.0, 30.0])
        predictor = FailurePredictor(precision=1.0, recall=1.0, lead_time=2.0,
                                     rng=RngStream(0, "p"))
        trace = predictor.predict(plan, horizon=100.0)
        assert trace.true_positives == 3
        assert trace.false_positives == 0
        assert trace.times() == [8.0, 18.0, 28.0]

    def test_recall_zero_means_silence(self):
        plan = plan_with_faults([10.0, 20.0])
        predictor = FailurePredictor(precision=1.0, recall=0.0,
                                     rng=RngStream(0, "p"))
        assert predictor.predict(plan, horizon=100.0).alarms == []

    def test_precision_controls_false_alarms(self):
        plan = plan_with_faults(list(range(10, 210, 10)))
        predictor = FailurePredictor(precision=0.5, recall=1.0, lead_time=1.0,
                                     rng=RngStream(1, "p"))
        trace = predictor.predict(plan, horizon=300.0)
        assert trace.true_positives == 20
        assert trace.false_positives == 20
        assert trace.achieved_precision() == pytest.approx(0.5)

    def test_recall_is_statistical(self):
        plan = plan_with_faults(list(range(10, 1010, 10)))
        predictor = FailurePredictor(precision=1.0, recall=0.6,
                                     rng=RngStream(2, "p"))
        trace = predictor.predict(plan, horizon=2000.0)
        assert trace.true_positives == pytest.approx(60, rel=0.25)

    def test_lead_time_clamped_at_zero(self):
        plan = plan_with_faults([1.0])
        predictor = FailurePredictor(precision=1.0, recall=1.0, lead_time=5.0,
                                     rng=RngStream(0, "p"))
        assert predictor.predict(plan, horizon=10.0).times() == [0.0]

    def test_alarms_sorted(self):
        plan = plan_with_faults([50.0, 10.0, 30.0])
        predictor = FailurePredictor(precision=0.6, recall=1.0, lead_time=1.0,
                                     rng=RngStream(3, "p"))
        times = predictor.predict(plan, horizon=100.0).times()
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailurePredictor(precision=0.0)
        with pytest.raises(ConfigurationError):
            FailurePredictor(recall=1.5)
        with pytest.raises(ConfigurationError):
            FailurePredictor(lead_time=-1.0)


class TestProactiveCheckpoints:
    #: The fault lands late in a 10 s checkpoint period: without prediction a
    #: rollback replays ~9 s of work, with a 1.5 s-lead alarm only ~1.5 s.
    FAULT_TIME = 19.0

    def run(self, trace=None, **overrides):
        plan = plan_with_faults([self.FAULT_TIME])
        defaults = dict(checkpoint_interval=10.0, total_iterations=400,
                        tasks_per_node=1, app_scale=1e-4, seed=7,
                        spare_nodes=8, scheme=ResilienceScheme.STRONG)
        defaults.update(overrides)
        acr = ACR("jacobi3d-charm", nodes_per_replica=4,
                  config=ACRConfig(**defaults), injection_plan=plan,
                  prediction_trace=trace)
        return acr.run(until=3000.0, max_events=20_000_000)

    def _perfect_trace(self):
        return FailurePredictor(
            precision=1.0, recall=1.0, lead_time=1.5, rng=RngStream(0, "p")
        ).predict(plan_with_faults([self.FAULT_TIME]), horizon=100.0)

    def test_alarm_triggers_extra_checkpoint(self):
        baseline = self.run()
        predicted = self.run(trace=self._perfect_trace())
        assert predicted.prediction_alarms == 1
        assert predicted.checkpoints_completed >= baseline.checkpoints_completed

    def test_prediction_reduces_rework(self):
        # The §2.2 motivation: a checkpoint right before the fault means the
        # crashed replica replays only the lead time, not a whole period.
        baseline = self.run()
        predicted = self.run(trace=self._perfect_trace())
        assert baseline.rework_iterations > 0
        assert predicted.rework_iterations < 0.5 * baseline.rework_iterations
        assert predicted.result_correct and baseline.result_correct

    def test_false_alarms_only_cost_checkpoints(self):
        trace = PredictionTrace(alarms=[])
        from repro.core.prediction import Alarm

        trace.alarms = [Alarm(time=t, true_positive=False)
                        for t in (3.0, 6.0, 9.0)]
        report = self.run(trace=trace)
        assert report.prediction_alarms == 3
        assert report.completed and report.result_correct
