"""Timeline recorder tests."""

from repro.core.events import Timeline, TimelineKind


class TestTimeline:
    def make(self):
        tl = Timeline()
        tl.record(0.0, TimelineKind.JOB_START)
        tl.record(5.0, TimelineKind.CHECKPOINT_DONE, iteration=10)
        tl.record(7.0, TimelineKind.HARD_FAULT_INJECTED, replica=1, rank=2)
        tl.record(9.0, TimelineKind.CHECKPOINT_DONE, iteration=20)
        tl.record(14.0, TimelineKind.CHECKPOINT_DONE, iteration=30)
        return tl

    def test_of_kind_filters(self):
        tl = self.make()
        assert len(tl.of_kind(TimelineKind.CHECKPOINT_DONE)) == 3
        assert tl.of_kind(TimelineKind.HARD_FAULT_INJECTED)[0].detail["rank"] == 2

    def test_times_of(self):
        assert self.make().times_of(TimelineKind.CHECKPOINT_DONE) == [5.0, 9.0, 14.0]

    def test_checkpoint_intervals(self):
        assert self.make().checkpoint_intervals() == [4.0, 5.0]

    def test_render_ascii_marks(self):
        art = self.make().render_ascii(width=50, horizon=15.0, legend=False)
        assert len(art) == 50
        assert art.count("|") == 3
        assert art.count("X") == 1

    def test_render_ascii_legend(self):
        art = self.make().render_ascii(width=50, horizon=15.0)
        lane, legend = art.split("\n")
        assert len(lane) == 50
        assert legend == Timeline.LEGEND
        assert "checkpoint" in legend and "hard fault" in legend

    def test_render_distinguishes_sdc_and_recovery(self):
        tl = Timeline()
        tl.record(2.0, TimelineKind.SDC_INJECTED)
        tl.record(5.0, TimelineKind.HARD_FAULT_INJECTED)
        tl.record(8.0, TimelineKind.RECOVERY_DONE)
        art = tl.render_ascii(width=30, horizon=10.0, legend=False)
        assert art.count("s") == 1
        assert art.count("X") == 1
        assert art.count("R") == 1

    def test_render_failures_dominate_collisions(self):
        tl = Timeline()
        tl.record(5.0, TimelineKind.CHECKPOINT_DONE)
        tl.record(5.0, TimelineKind.SDC_INJECTED)
        tl.record(5.0, TimelineKind.HARD_FAULT_INJECTED)
        art = tl.render_ascii(width=10, horizon=10.0, legend=False)
        assert "X" in art and "|" not in art and "s" not in art

    def test_render_zero_horizon(self):
        tl = Timeline()
        tl.record(0.0, TimelineKind.JOB_START)
        tl.record(0.0, TimelineKind.HARD_FAULT_INJECTED)
        art = tl.render_ascii(width=10, horizon=0.0, legend=False)
        assert len(art) == 10
        assert "X" in art

    def test_empty_timeline(self):
        assert Timeline().render_ascii() == "(empty timeline)"


class TestTimelineSubscribers:
    def test_subscribe_delivers_events(self):
        tl = Timeline()
        seen: list = []
        tl.subscribe(seen.append)
        tl.record(1.0, TimelineKind.JOB_START)
        assert len(seen) == 1 and seen[0].kind is TimelineKind.JOB_START

    def test_unsubscribe_removes(self):
        tl = Timeline()
        seen: list = []
        fn = seen.append
        tl.subscribe(fn)
        tl.record(1.0, TimelineKind.JOB_START)
        tl.unsubscribe(fn)
        tl.record(2.0, TimelineKind.JOB_END)
        assert len(seen) == 1

    def test_unsubscribe_unknown_is_noop(self):
        Timeline().unsubscribe(lambda e: None)

    def test_multiple_subscribers_coexist(self):
        tl = Timeline()
        a: list = []
        b: list = []
        tl.subscribe(a.append)
        tl.subscribe(b.append)
        tl.record(1.0, TimelineKind.CHECKPOINT_DONE)
        assert len(a) == 1 and len(b) == 1

    def test_legacy_on_record_shim(self):
        tl = Timeline()
        legacy: list = []
        sub: list = []
        tl.subscribe(sub.append)
        tl.on_record = legacy.append
        assert tl.on_record is not None
        tl.record(1.0, TimelineKind.JOB_START)
        assert len(legacy) == 1 and len(sub) == 1
        # Reassigning the legacy slot replaces only itself.
        other: list = []
        tl.on_record = other.append
        tl.record(2.0, TimelineKind.JOB_END)
        assert len(legacy) == 1 and len(other) == 1 and len(sub) == 2
