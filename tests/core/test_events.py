"""Timeline recorder tests."""

from repro.core.events import Timeline, TimelineKind


class TestTimeline:
    def make(self):
        tl = Timeline()
        tl.record(0.0, TimelineKind.JOB_START)
        tl.record(5.0, TimelineKind.CHECKPOINT_DONE, iteration=10)
        tl.record(7.0, TimelineKind.HARD_FAULT_INJECTED, replica=1, rank=2)
        tl.record(9.0, TimelineKind.CHECKPOINT_DONE, iteration=20)
        tl.record(14.0, TimelineKind.CHECKPOINT_DONE, iteration=30)
        return tl

    def test_of_kind_filters(self):
        tl = self.make()
        assert len(tl.of_kind(TimelineKind.CHECKPOINT_DONE)) == 3
        assert tl.of_kind(TimelineKind.HARD_FAULT_INJECTED)[0].detail["rank"] == 2

    def test_times_of(self):
        assert self.make().times_of(TimelineKind.CHECKPOINT_DONE) == [5.0, 9.0, 14.0]

    def test_checkpoint_intervals(self):
        assert self.make().checkpoint_intervals() == [4.0, 5.0]

    def test_render_ascii_marks(self):
        art = self.make().render_ascii(width=50, horizon=15.0)
        assert len(art) == 50
        assert art.count("|") == 3
        assert art.count("X") == 1

    def test_render_failures_dominate_collisions(self):
        tl = Timeline()
        tl.record(5.0, TimelineKind.CHECKPOINT_DONE)
        tl.record(5.0, TimelineKind.HARD_FAULT_INJECTED)
        art = tl.render_ascii(width=10, horizon=10.0)
        assert "X" in art and "|" not in art

    def test_empty_timeline(self):
        assert Timeline().render_ascii() == "(empty timeline)"
