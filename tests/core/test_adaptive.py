"""Adaptive checkpoint-interval controller tests (§2.2, Fig. 12)."""

import pytest

from repro.core.adaptive import AdaptiveIntervalController
from repro.util.errors import ConfigurationError


def controller(**kw):
    base = dict(delta=0.5, initial_interval=6.0, min_interval=1.0,
                max_interval=600.0)
    base.update(kw)
    return AdaptiveIntervalController(**base)


class TestFitting:
    def test_no_data_returns_initial(self):
        c = controller()
        assert c.next_interval(100.0) == 6.0

    def test_single_failure_still_initial(self):
        c = controller(min_failures_to_fit=2)
        c.record_failure(10.0)
        assert c.next_interval(100.0) == 6.0

    def test_poisson_fit_recovers_rate(self):
        c = controller(assume_weibull=False)
        for t in range(10, 1010, 10):  # one failure every 10 s
            c.record_failure(float(t))
        fit = c.fit(1000.0)
        assert fit.current_mtbf == pytest.approx(10.0)
        assert fit.shape == 1.0

    def test_weibull_shape_below_one_for_decreasing_rate(self):
        # Front-loaded failures (power-law times) => shape < 1.
        c = controller()
        times = [1800.0 * (i / 19) ** (1 / 0.6) for i in range(1, 20)]
        for t in sorted(times):
            c.record_failure(t)
        fit = c.fit(1800.0)
        assert 0.3 < fit.shape < 0.9

    def test_weibull_shape_near_one_for_uniform_rate(self):
        c = controller()
        for t in range(50, 1850, 100):
            c.record_failure(float(t))
        fit = c.fit(1800.0)
        assert 0.7 < fit.shape < 1.5

    def test_failures_must_be_ordered(self):
        c = controller()
        c.record_failure(10.0)
        with pytest.raises(ConfigurationError):
            c.record_failure(5.0)


class TestIntervalDecision:
    def test_fig12_interval_grows_under_decreasing_rate(self):
        # The paper's adaptation: 6 s early, ~17 s at the end of the run.
        c = controller(delta=0.5, initial_interval=6.0)
        times = [1800.0 * (i / 19) ** (1 / 0.6) for i in range(1, 20)]
        early = None
        for t in sorted(times):
            c.record_failure(t)
            if early is None and len(c.failure_times) == 6:
                early = c.next_interval(t + 1)
        late = c.next_interval(1800.0)
        assert early is not None
        assert late > 1.5 * early

    def test_interval_clamped(self):
        c = controller(min_interval=5.0, max_interval=8.0)
        c.record_failure(0.5)
        c.record_failure(0.6)  # catastrophic rate -> tiny Daly period
        assert c.next_interval(1.0) == 5.0
        c2 = controller(min_interval=1.0, max_interval=8.0, delta=100.0)
        c2.record_failure(10.0)
        c2.record_failure(1e6)
        assert c2.next_interval(2e6) == 8.0

    def test_more_failures_shorter_interval(self):
        sparse = controller(assume_weibull=False)
        dense = controller(assume_weibull=False)
        for t in (100.0, 900.0):
            sparse.record_failure(t)
        for t in range(50, 1000, 50):
            dense.record_failure(float(t))
        assert dense.next_interval(1000.0) < sparse.next_interval(1000.0)

    def test_history_recorded(self):
        c = controller()
        c.next_interval(10.0)
        c.next_interval(20.0)
        assert [t for t, _ in c.interval_history] == [10.0, 20.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            controller(initial_interval=0.0)
        with pytest.raises(ConfigurationError):
            controller(min_interval=10.0, max_interval=1.0)
