"""Adaptive checkpoint-interval controller tests (§2.2, Fig. 12)."""

import pytest

from repro.core.adaptive import AdaptiveIntervalController
from repro.util.errors import ConfigurationError, SimulationError


def controller(**kw):
    base = dict(delta=0.5, initial_interval=6.0, min_interval=1.0,
                max_interval=600.0)
    base.update(kw)
    return AdaptiveIntervalController(**base)


class TestFitting:
    def test_no_data_returns_initial(self):
        c = controller()
        assert c.next_interval(100.0) == 6.0

    def test_single_failure_still_initial(self):
        c = controller(min_failures_to_fit=2)
        c.record_failure(10.0)
        assert c.next_interval(100.0) == 6.0

    def test_poisson_fit_recovers_rate(self):
        c = controller(assume_weibull=False)
        for t in range(10, 1010, 10):  # one failure every 10 s
            c.record_failure(float(t))
        fit = c.fit(1000.0)
        assert fit.current_mtbf == pytest.approx(10.0)
        assert fit.shape == 1.0

    def test_weibull_shape_below_one_for_decreasing_rate(self):
        # Front-loaded failures (power-law times) => shape < 1.
        c = controller()
        times = [1800.0 * (i / 19) ** (1 / 0.6) for i in range(1, 20)]
        for t in sorted(times):
            c.record_failure(t)
        fit = c.fit(1800.0)
        assert 0.3 < fit.shape < 0.9

    def test_weibull_shape_near_one_for_uniform_rate(self):
        c = controller()
        for t in range(50, 1850, 100):
            c.record_failure(float(t))
        fit = c.fit(1800.0)
        assert 0.7 < fit.shape < 1.5

    def test_out_of_order_failure_clamped_not_rejected(self):
        # Runtime detections can race slightly out of order (heartbeat vs
        # consensus watchdog); they are clamped to the last recorded time.
        c = controller()
        c.record_failure(10.0)
        c.record_failure(5.0)
        assert c.failure_times == [10.0, 10.0]

    def test_non_time_failure_value_rejected(self):
        c = controller()
        with pytest.raises(SimulationError):
            c.record_failure(float("nan"))
        with pytest.raises(SimulationError):
            c.record_failure(-1.0)

    def test_failure_at_observation_time_not_inflating_shape(self):
        # A uniform-rate stream whose last failure lands exactly at the fit
        # time is failure-truncated; the (n-1) correction keeps the shape
        # estimate near 1 instead of biasing it upward.
        c = controller()
        for t in range(100, 1801, 100):
            c.record_failure(float(t))
        truncated = c.fit(1800.0)          # last failure at t == now
        open_window = c.fit(1850.0)        # same failures, window open past them
        assert 0.7 < truncated.shape < 1.5
        assert truncated.shape <= open_window.shape * 1.5

    def test_truncated_vs_open_window_consistency(self):
        # The same front-loaded stream must not jump in shape merely because
        # the observation window ends on the last failure.
        times = [1800.0 * (i / 19) ** (1 / 0.6) for i in range(1, 20)]
        c = controller()
        for t in sorted(times):
            c.record_failure(t)
        at_failure = c.fit(max(times))
        just_after = c.fit(max(times) + 1e-6)
        assert at_failure.shape == pytest.approx(just_after.shape, rel=0.15)


class TestIntervalDecision:
    def test_fig12_interval_grows_under_decreasing_rate(self):
        # The paper's adaptation: 6 s early, ~17 s at the end of the run.
        c = controller(delta=0.5, initial_interval=6.0)
        times = [1800.0 * (i / 19) ** (1 / 0.6) for i in range(1, 20)]
        early = None
        for t in sorted(times):
            c.record_failure(t)
            if early is None and len(c.failure_times) == 6:
                early = c.next_interval(t + 1)
        late = c.next_interval(1800.0)
        assert early is not None
        assert late > 1.5 * early

    def test_interval_clamped(self):
        c = controller(min_interval=5.0, max_interval=8.0)
        c.record_failure(0.5)
        c.record_failure(0.6)  # catastrophic rate -> tiny Daly period
        assert c.next_interval(1.0) == 5.0
        c2 = controller(min_interval=1.0, max_interval=8.0, delta=100.0)
        c2.record_failure(10.0)
        c2.record_failure(1e6)
        assert c2.next_interval(2e6) == 8.0

    def test_more_failures_shorter_interval(self):
        sparse = controller(assume_weibull=False)
        dense = controller(assume_weibull=False)
        for t in (100.0, 900.0):
            sparse.record_failure(t)
        for t in range(50, 1000, 50):
            dense.record_failure(float(t))
        assert dense.next_interval(1000.0) < sparse.next_interval(1000.0)

    def test_history_recorded(self):
        c = controller()
        c.next_interval(10.0)
        c.next_interval(20.0)
        assert [t for t, _ in c.interval_history] == [10.0, 20.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            controller(initial_interval=0.0)
        with pytest.raises(ConfigurationError):
            controller(min_interval=10.0, max_interval=1.0)
