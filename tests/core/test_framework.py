"""End-to-end framework tests: the full ACR control flow of Figures 4 and 5.

These run the complete stack — DES runtime, consensus, heartbeats, PUP
checkpoints, bit-flip injection, recovery schemes — on real (scaled-down)
application state, and check *semantic* outcomes: bit-correct results,
detection/vulnerability behaviour per scheme, and recovery accounting.
"""

import numpy as np
import pytest

from repro.core import ACR, ACRConfig
from repro.core.events import TimelineKind
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.model import ResilienceScheme
from repro.util.errors import ConfigurationError

HORIZON = 3000.0
EVENTS = 20_000_000


def run(app="jacobi3d-charm", nodes=4, plan=None, **cfg_overrides):
    defaults = dict(checkpoint_interval=2.0, total_iterations=150,
                    tasks_per_node=1, app_scale=1e-4, seed=7, spare_nodes=16)
    defaults.update(cfg_overrides)
    config = ACRConfig(**defaults)
    acr = ACR(app, nodes_per_replica=nodes, config=config,
              injection_plan=plan or InjectionPlan())
    report = acr.run(until=HORIZON, max_events=EVENTS)
    return acr, report


class TestFailureFree:
    def test_completes_with_correct_result(self):
        _, report = run()
        assert report.completed
        assert report.result_correct
        assert report.rework_iterations == 0
        assert report.hard_detected == 0 and report.sdc_detected == 0

    def test_replicas_agree_bitwise(self):
        _, report = run()
        assert np.array_equal(report.digests[0], report.digests[1])

    def test_periodic_checkpoints_happen(self):
        _, report = run(total_iterations=400, checkpoint_interval=3.0)
        assert report.checkpoints_completed >= 4

    def test_deterministic_across_runs(self):
        _, a = run(seed=9)
        _, b = run(seed=9)
        assert a.final_time == b.final_time
        assert a.checkpoints_completed == b.checkpoints_completed
        assert np.array_equal(a.digests[0], b.digests[0])

    def test_checkpoint_overhead_accounted(self):
        _, report = run(total_iterations=400, checkpoint_interval=3.0)
        assert report.checkpoint_time > 0
        assert report.overhead_fraction < 0.5


class TestSDCDetectionAndRecovery:
    def plan(self):
        return InjectionPlan([
            FaultEvent(time=3.0, kind=FaultKind.SDC, replica=0, node_id=1),
        ])

    def test_sdc_detected_and_rolled_back(self):
        _, report = run(plan=self.plan())
        assert report.sdc_injected == 1
        assert report.sdc_detected == 1
        assert report.rollbacks >= 1
        assert report.recoveries.get("sdc") == 1
        assert report.completed and report.result_correct

    def test_sdc_in_replica1_also_detected(self):
        plan = InjectionPlan([
            FaultEvent(time=3.0, kind=FaultKind.SDC, replica=1, node_id=0),
        ])
        _, report = run(plan=plan)
        assert report.sdc_detected == 1
        assert report.result_correct

    def test_checksum_mode_detects_too(self):
        _, report = run(plan=self.plan(), use_checksum=True)
        assert report.sdc_detected == 1
        assert report.result_correct

    def test_multiple_sdc_all_corrected(self):
        plan = InjectionPlan([
            FaultEvent(time=t, kind=FaultKind.SDC, replica=t_i % 2, node_id=t_i % 4)
            for t_i, t in enumerate((2.5, 6.5, 11.0))
        ])
        _, report = run(plan=plan, total_iterations=300)
        assert report.sdc_injected == 3
        assert report.sdc_detected >= 3
        assert report.result_correct

    def test_timeline_records_detection(self):
        _, report = run(plan=self.plan())
        assert report.timeline.of_kind(TimelineKind.SDC_DETECTED)
        assert report.timeline.of_kind(TimelineKind.ROLLBACK)


@pytest.mark.parametrize("scheme", ["strong", "medium", "weak"])
class TestHardErrorRecovery:
    def plan(self):
        return InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
        ])

    def test_recovers_and_finishes_correctly(self, scheme):
        _, report = run(plan=self.plan(), scheme=ResilienceScheme(scheme))
        assert report.hard_injected == 1
        assert report.hard_detected == 1
        assert report.recoveries.get(scheme) == 1
        assert report.completed
        assert report.result_correct
        assert report.spare_nodes_used == 1

    def test_detection_via_heartbeat_delay(self, scheme):
        _, report = run(plan=self.plan(), scheme=ResilienceScheme(scheme))
        injected = report.timeline.times_of(TimelineKind.HARD_FAULT_INJECTED)[0]
        detected = report.timeline.times_of(TimelineKind.HARD_FAULT_DETECTED)[0]
        assert detected > injected
        assert detected - injected <= 4 * 0.5 + 0.5 + 1e-6

    def test_failure_in_other_replica_symmetric(self, scheme):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=0, node_id=0),
        ])
        _, report = run(plan=plan, scheme=ResilienceScheme(scheme))
        assert report.completed and report.result_correct


class TestSchemeSemantics:
    def test_strong_reworks_most(self):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        results = {}
        for scheme in ("strong", "medium", "weak"):
            _, report = run(plan=plan, scheme=ResilienceScheme(scheme),
                            total_iterations=300)
            results[scheme] = report
        assert results["strong"].rework_iterations > results["medium"].rework_iterations
        assert results["strong"].rework_iterations > results["weak"].rework_iterations

    def test_vulnerability_window_medium_and_weak(self):
        # The §2.3 trade-off, end to end: an SDC in the healthy replica right
        # before a hard error is silently adopted by medium/weak, but caught
        # by strong.  (LeanMD trajectories are chaotic, so corruption cannot
        # wash out numerically as it does in the contracting Jacobi solve.)
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.SDC, replica=0, node_id=1),
            FaultEvent(time=6.0, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        outcomes = {}
        for scheme in ("strong", "medium", "weak"):
            _, report = run(app="leanmd", plan=plan, nodes=4,
                            scheme=ResilienceScheme(scheme),
                            checkpoint_interval=10.0, total_iterations=400,
                            app_scale=2e-3, seed=11)
            outcomes[scheme] = report
        assert outcomes["strong"].sdc_detected == 1
        assert outcomes["strong"].result_correct
        for scheme in ("medium", "weak"):
            assert outcomes[scheme].sdc_detected == 0
            assert outcomes[scheme].result_correct is False
            # Both replicas agree on the corrupted state: silent corruption.
            assert np.array_equal(outcomes[scheme].digests[0],
                                  outcomes[scheme].digests[1])

    def test_weak_healthy_replica_zero_rework(self):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        acr, report = run(plan=plan, scheme=ResilienceScheme.WEAK,
                          total_iterations=300)
        # The healthy replica never rolls back under weak recovery.
        healthy_rework = sum(
            max(t.iterations_executed - t.progress, 0) for t in acr.tasks[0]
        )
        assert healthy_rework == 0


class TestDoubleFailures:
    def test_second_failure_during_recovery_rolls_back_both(self):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
            FaultEvent(time=5.3, kind=FaultKind.HARD, replica=0, node_id=1),
        ])
        _, report = run(plan=plan, scheme=ResilienceScheme.MEDIUM,
                        total_iterations=300)
        assert report.hard_detected == 2
        assert report.completed and report.result_correct
        assert report.recoveries.get("double-failure", 0) >= 1

    def test_weak_buddy_failure_restarts_from_beginning(self):
        # §2.3: "If the failure happens on the buddy node of the crashed node
        # ... application needs to restart from the beginning."
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
            FaultEvent(time=8.0, kind=FaultKind.HARD, replica=0, node_id=2),
        ])
        _, report = run(plan=plan, scheme=ResilienceScheme.WEAK,
                        checkpoint_interval=30.0, total_iterations=300)
        assert report.recoveries.get("restart-from-beginning", 0) == 1
        assert report.completed and report.result_correct

    def test_weak_non_buddy_failure_rolls_back_to_checkpoint(self):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
            FaultEvent(time=8.0, kind=FaultKind.HARD, replica=0, node_id=0),
        ])
        _, report = run(plan=plan, scheme=ResilienceScheme.WEAK,
                        checkpoint_interval=30.0, total_iterations=300)
        assert report.recoveries.get("double-failure", 0) == 1
        assert "restart-from-beginning" not in report.recoveries
        assert report.completed and report.result_correct


class TestSpareNodePool:
    def test_pool_exhaustion_aborts(self):
        plan = InjectionPlan([
            FaultEvent(time=3.0 + i * 4.0, kind=FaultKind.HARD,
                       replica=(i % 2), node_id=i % 4)
            for i in range(4)
        ])
        _, report = run(plan=plan, spare_nodes=2, total_iterations=100_000)
        assert report.aborted_reason == "spare node pool exhausted"
        assert not report.completed
        assert report.spare_nodes_used == 2

    def test_faults_on_dead_nodes_ignored(self):
        plan = InjectionPlan([
            FaultEvent(time=5.0, kind=FaultKind.HARD, replica=1, node_id=2),
            FaultEvent(time=5.1, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        _, report = run(plan=plan, scheme=ResilienceScheme.STRONG,
                        total_iterations=300)
        assert report.hard_injected == 1


class TestFaultsDuringProtocolPhases:
    def test_fault_during_consensus_aborts_and_recovers(self):
        # Interval 2.0 -> consensus around t=2.0; kill a node right then.
        plan = InjectionPlan([
            FaultEvent(time=2.0, kind=FaultKind.HARD, replica=0, node_id=3),
        ])
        acr, report = run(plan=plan, total_iterations=300)
        assert report.completed and report.result_correct
        assert acr.consensus.rounds_aborted >= 0  # protocol survived either way

    def test_many_random_faults_still_correct(self):
        # Stress: mixed SDC + hard faults at awkward times.
        events = []
        for i, t in enumerate((1.7, 4.1, 6.9, 9.3, 13.0)):
            kind = FaultKind.SDC if i % 2 else FaultKind.HARD
            events.append(FaultEvent(time=t, kind=kind, replica=i % 2,
                                     node_id=(2 * i) % 4))
        for scheme in ("strong", "medium", "weak"):
            _, report = run(plan=InjectionPlan(events),
                            scheme=ResilienceScheme(scheme),
                            total_iterations=400)
            assert report.completed, scheme
            assert report.aborted_reason is None


class TestAdaptiveMode:
    def test_interval_recorded_and_clamped(self):
        plan = InjectionPlan([
            FaultEvent(time=t, kind=FaultKind.HARD, replica=0, node_id=1)
            for t in (3.0, 5.0, 8.0)
        ])
        _, report = run(plan=plan, adaptive=True, adaptive_initial_interval=2.0,
                        adaptive_min_interval=1.0, adaptive_max_interval=30.0,
                        total_iterations=600, scheme=ResilienceScheme.MEDIUM)
        assert report.interval_history
        assert all(1.0 <= v <= 30.0 for _, v in report.interval_history)
        assert report.completed and report.result_correct

    def test_interval_history_single_source_of_truth(self):
        # The controller owns the history; the report is a copy of it and the
        # timeline's INTERVAL_ADAPTED events mirror it one-for-one.
        plan = InjectionPlan([
            FaultEvent(time=t, kind=FaultKind.HARD, replica=0, node_id=1)
            for t in (3.0, 5.0, 8.0)
        ])
        acr, report = run(plan=plan, adaptive=True, adaptive_initial_interval=2.0,
                          adaptive_min_interval=1.0, adaptive_max_interval=30.0,
                          total_iterations=600, scheme=ResilienceScheme.MEDIUM)
        assert report.interval_history == acr.adaptive.interval_history
        adapted = [(e.time, e.detail["interval"])
                   for e in report.timeline.of_kind(TimelineKind.INTERVAL_ADAPTED)]
        assert adapted == report.interval_history


class TestValidation:
    def test_bad_node_count(self):
        with pytest.raises(ConfigurationError):
            ACR("jacobi3d-charm", nodes_per_replica=0)

    def test_report_iterations_completed(self):
        _, report = run(total_iterations=150)
        assert report.iterations_completed == 150
