"""Randomized end-to-end stress tests.

Hypothesis drives arbitrary fault schedules (times, kinds, victims) through
the full ACR stack and checks the global invariant of the strong scheme: the
job either completes with a bit-correct result, or aborts *only* because the
spare pool ran dry.  This is the closest thing to the paper's large-scale
injection campaign that a laptop can run exhaustively.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ACR, ACRConfig
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.model import ResilienceScheme

NODES = 3
HORIZON = 4000.0


def fault_events(max_faults=5):
    event = st.builds(
        FaultEvent,
        time=st.floats(min_value=0.5, max_value=25.0),
        kind=st.sampled_from([FaultKind.HARD, FaultKind.SDC]),
        replica=st.integers(0, 1),
        node_id=st.integers(0, NODES - 1),
    )
    return st.lists(event, max_size=max_faults)


def run_acr(events, scheme="strong", **overrides):
    defaults = dict(scheme=ResilienceScheme(scheme), checkpoint_interval=2.0,
                    total_iterations=150, tasks_per_node=1, app_scale=1e-4,
                    seed=13, spare_nodes=64)
    defaults.update(overrides)
    acr = ACR("synthetic", nodes_per_replica=NODES,
              config=ACRConfig(**defaults), injection_plan=InjectionPlan(events))
    return acr.run(until=HORIZON, max_events=30_000_000)


class TestStrongSchemeInvariant:
    @given(fault_events())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_fault_schedule_ends_correct_or_out_of_spares(self, events):
        report = run_acr(events)
        if report.aborted_reason is not None:
            assert report.aborted_reason == "spare node pool exhausted"
        else:
            assert report.completed, (
                f"run stalled: {len(events)} faults, "
                f"phase events remain at t={report.final_time}"
            )
            assert report.result_correct

    @given(fault_events(max_faults=3), st.sampled_from(["medium", "weak"]))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_weaker_schemes_always_terminate(self, events, scheme):
        # Medium/weak may legitimately finish *incorrect* (the §2.3 window),
        # but they must never hang or crash.
        report = run_acr(events, scheme=scheme)
        assert report.completed or report.aborted_reason is not None

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_replay(self, seed):
        events = [
            FaultEvent(time=2.7, kind=FaultKind.HARD, replica=0, node_id=1),
            FaultEvent(time=5.1, kind=FaultKind.SDC, replica=1, node_id=2),
        ]
        a = run_acr(events, seed=seed % 1000)
        b = run_acr(events, seed=seed % 1000)
        assert a.final_time == b.final_time
        assert a.checkpoints_completed == b.checkpoints_completed
        assert a.recoveries == b.recoveries


class TestSimultaneousFaults:
    def test_same_instant_cross_replica(self):
        events = [
            FaultEvent(time=4.0, kind=FaultKind.HARD, replica=0, node_id=0),
            FaultEvent(time=4.0, kind=FaultKind.HARD, replica=1, node_id=1),
        ]
        report = run_acr(events)
        assert report.completed and report.result_correct

    def test_same_instant_buddy_pair(self):
        # Both members of a buddy pair die at once - the worst case of §2.3.
        events = [
            FaultEvent(time=4.0, kind=FaultKind.HARD, replica=0, node_id=1),
            FaultEvent(time=4.0, kind=FaultKind.HARD, replica=1, node_id=1),
        ]
        report = run_acr(events)
        assert report.completed and report.result_correct

    def test_sdc_and_hard_same_instant(self):
        events = [
            FaultEvent(time=4.0, kind=FaultKind.SDC, replica=0, node_id=0),
            FaultEvent(time=4.0, kind=FaultKind.HARD, replica=0, node_id=2),
        ]
        report = run_acr(events)
        assert report.completed and report.result_correct

    def test_rapid_fire_same_node_rank_alternating_replicas(self):
        events = [
            FaultEvent(time=3.0 + 0.1 * i, kind=FaultKind.HARD,
                       replica=i % 2, node_id=0)
            for i in range(4)
        ]
        report = run_acr(events)
        assert report.completed and report.result_correct
