"""ACR configuration validation tests."""

import pytest

from repro.core.config import ACRConfig
from repro.model.schemes import ResilienceScheme
from repro.network.mapping import MappingScheme
from repro.util.errors import ConfigurationError


class TestACRConfig:
    def test_defaults_are_paper_like(self):
        cfg = ACRConfig()
        assert cfg.scheme is ResilienceScheme.STRONG
        assert cfg.mapping is MappingScheme.DEFAULT
        assert not cfg.use_checksum
        assert not cfg.adaptive

    def test_with_overrides(self):
        cfg = ACRConfig().with_overrides(scheme=ResilienceScheme.WEAK,
                                         use_checksum=True)
        assert cfg.scheme is ResilienceScheme.WEAK
        assert cfg.use_checksum

    @pytest.mark.parametrize("field,value", [
        ("checkpoint_interval", 0.0),
        ("tasks_per_node", 0),
        ("spare_nodes", -1),
        ("total_iterations", 0),
        ("app_scale", 0.0),
        ("app_scale", 1.5),
        ("adaptive_min_interval", 0.0),
    ])
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ConfigurationError):
            ACRConfig(**{field: value})

    def test_rejects_inverted_adaptive_clamp(self):
        with pytest.raises(ConfigurationError):
            ACRConfig(adaptive_min_interval=10.0, adaptive_max_interval=1.0)

    def test_accepts_string_enums(self):
        cfg = ACRConfig(scheme=ResilienceScheme("medium"),
                        mapping=MappingScheme("column"))
        assert cfg.scheme is ResilienceScheme.MEDIUM
        assert cfg.mapping is MappingScheme.COLUMN
