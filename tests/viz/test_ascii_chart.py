"""Terminal-chart tests."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.viz.ascii_chart import heatmap, line_chart, sparkline, stacked_bars


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart({"a": ([1, 2, 3], [1.0, 2.0, 3.0])},
                           width=40, height=10, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 10 + 2 + 1  # title + grid + axis + legend

    def test_extremes_plotted_at_edges(self):
        chart = line_chart({"a": ([0, 10], [0.0, 1.0])}, width=20, height=6)
        lines = chart.splitlines()
        assert "o" in lines[0]        # max value on the top row
        assert "o" in lines[5]        # min value on the bottom row

    def test_multiple_series_distinct_glyphs(self):
        chart = line_chart({
            "one": ([1, 2], [0.0, 0.0]),
            "two": ([1, 2], [1.0, 1.0]),
        })
        assert "o=one" in chart and "x=two" in chart
        assert "x" in chart.splitlines()[0]

    def test_logx_spacing(self):
        chart = line_chart({"a": ([1, 10, 100], [1, 2, 3])},
                           width=21, height=5, logx=True)
        # Log spacing puts the middle point near the center column.
        rows = chart.splitlines()
        middle_row = next(r for r in rows if r.count("o") and "2" not in r[:4])
        assert middle_row  # smoke: the point exists somewhere

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": ([1, 2], [1])})
        with pytest.raises(ConfigurationError):
            line_chart({"a": ([0], [1])}, logx=True)
        with pytest.raises(ConfigurationError):
            line_chart({"a": ([1], [1])}, width=2)


class TestStackedBars:
    def test_bar_lengths_proportional(self):
        chart = stacked_bars(
            ["small", "large"],
            {"phase": [1.0, 2.0]},
            width=40,
        )
        lines = chart.splitlines()
        assert lines[0].count("o") == 20
        assert lines[1].count("o") == 40

    def test_segments_stack_with_distinct_glyphs(self):
        chart = stacked_bars(["bar"], {"a": [1.0], "b": [1.0]}, width=10)
        row = chart.splitlines()[0]
        assert "ooooo" in row and "xxxxx" in row

    def test_totals_shown(self):
        chart = stacked_bars(["bar"], {"a": [1.5], "b": [0.5]}, width=10,
                             unit="s")
        assert "2 s" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stacked_bars([], {"a": []})
        with pytest.raises(ConfigurationError):
            stacked_bars(["x"], {"a": [1.0, 2.0]})
        with pytest.raises(ConfigurationError):
            stacked_bars(["x"], {"a": [-1.0]})


class TestHeatmap:
    def test_value_mode_shows_numbers(self):
        out = heatmap(np.array([[0, 4], [2, 1]]), show_values=True)
        assert "4" in out and "2" in out

    def test_intensity_mode_uses_ramp(self):
        out = heatmap(np.array([[0.0, 10.0]]))
        row = out.splitlines()[0]
        assert row.strip().endswith("@")

    def test_zero_matrix_renders(self):
        out = heatmap(np.zeros((2, 2)))
        assert "max=0" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            heatmap(np.zeros(3))
        with pytest.raises(ConfigurationError):
            heatmap(np.array([[-1.0]]))
        with pytest.raises(ConfigurationError):
            heatmap(np.zeros((0, 0)))


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestFigurePlots:
    def test_fig6_heatmap(self):
        from repro.viz import plot_fig6_heatmap

        out = plot_fig6_heatmap(scheme="default")
        assert "1 2 3 4 3 2 1 0" in out
        out_col = plot_fig6_heatmap(scheme="column")
        assert "1 0 1 0 1 0 1 0" in out_col

    def test_fig7_chart(self):
        from repro.model.surfaces import fig7_curves
        from repro.viz import plot_fig7_utilization

        pts = fig7_curves(sockets_axis=(1024, 65536), deltas=(15.0,))
        out = plot_fig7_utilization(pts, 15.0)
        assert "strong" in out and "weak" in out

    def test_fig8_bars(self):
        from repro.harness.figures import fig8_data
        from repro.viz import plot_fig8_bars

        rows = fig8_data(apps=("leanmd",), cores_axis=(1024,))
        out = plot_fig8_bars(rows, "leanmd", 1024)
        assert "default" in out and "checksum" in out

    def test_fig10_bars(self):
        from repro.harness.figures import fig10_data
        from repro.viz import plot_fig10_bars

        rows = fig10_data(apps=("leanmd",), cores_axis=(1024,))
        out = plot_fig10_bars(rows, "leanmd", 1024)
        assert "strong" in out and "reconstruction" in out

    def test_fig12_plot(self):
        from repro.harness.figures import fig12_data
        from repro.viz import plot_fig12_intervals

        result = fig12_data(nodes_per_replica=4, horizon=200.0, failures=4,
                            seed=5)
        out = plot_fig12_intervals(result)
        assert "timeline" in out
        assert "trajectory" in out
