"""Replica mapping tests (Fig. 6 semantics)."""

import numpy as np
import pytest

from repro.network.mapping import MappingScheme, build_mapping
from repro.network.topology import Torus3D
from repro.util.errors import ConfigurationError


@pytest.fixture
def torus512():
    return Torus3D((8, 8, 8))


class TestDefaultMapping:
    def test_splits_along_z(self, torus512):
        m = build_mapping(torus512, "default")
        assert m.nodes_per_replica == 256
        assert m.r1_coords[:, 2].max() == 3
        assert m.r2_coords[:, 2].min() == 4

    def test_buddies_share_xy(self, torus512):
        m = build_mapping(torus512, "default")
        assert np.array_equal(m.r1_coords[:, :2], m.r2_coords[:, :2])

    def test_buddy_distance_is_half_z(self, torus512):
        m = build_mapping(torus512, "default")
        assert set(m.buddy_distance()) == {4}

    def test_fig6a_max_link_load_is_half_z(self, torus512):
        m = build_mapping(torus512, "default")
        assert m.exchange_loads(1).max_load() == 4

    def test_fig6a_plane_profile(self, torus512):
        m = build_mapping(torus512, "default")
        profile = list(m.exchange_loads(1).plane_loads(2))
        assert profile == [1, 2, 3, 4, 3, 2, 1, 0]


class TestColumnMapping:
    def test_buddies_adjacent(self, torus512):
        m = build_mapping(torus512, "column")
        assert set(m.buddy_distance()) == {1}

    def test_no_link_overlap(self, torus512):
        # "This kind of mapping eliminates the overlap of paths used by
        # inter-replica messages" (§4.2).
        m = build_mapping(torus512, "column")
        assert m.exchange_loads(1).max_load() == 1

    def test_replicas_interleave(self, torus512):
        m = build_mapping(torus512, "column")
        assert set(m.r1_coords[:, 2]) == {0, 2, 4, 6}
        assert set(m.r2_coords[:, 2]) == {1, 3, 5, 7}


class TestMixedMapping:
    def test_buddies_chunk_apart(self, torus512):
        m = build_mapping(torus512, "mixed", chunk=2)
        assert set(m.buddy_distance()) == {2}

    def test_bounded_overlap(self, torus512):
        m = build_mapping(torus512, "mixed", chunk=2)
        assert m.exchange_loads(1).max_load() == 2

    def test_chunk_must_divide_z(self):
        with pytest.raises(ConfigurationError):
            build_mapping(Torus3D((4, 4, 6)), "mixed", chunk=2)

    def test_congestion_ordering_default_gt_mixed_gt_column(self, torus512):
        loads = {
            s: build_mapping(torus512, s).exchange_loads(1).max_load()
            for s in ("default", "mixed", "column")
        }
        assert loads["default"] > loads["mixed"] > loads["column"]


class TestGeneral:
    def test_each_node_used_exactly_once(self, torus512):
        for scheme in MappingScheme:
            m = build_mapping(torus512, scheme)
            all_coords = np.concatenate([m.r1_coords, m.r2_coords])
            ranks = torus512.coord_to_rank(all_coords)
            assert len(set(ranks.tolist())) == torus512.nnodes

    def test_odd_z_rejected(self):
        with pytest.raises(ConfigurationError):
            build_mapping(Torus3D((4, 4, 5)), "default")

    def test_exchange_direction_r2_to_r1(self, torus512):
        m = build_mapping(torus512, "default")
        a = m.exchange_loads(10, "r1->r2")
        b = m.exchange_loads(10, "r2->r1")
        assert a.max_load() == b.max_load()
        # Opposite direction uses the opposite link sets.
        assert not np.array_equal(a.pos[2], b.pos[2]) or not np.array_equal(
            a.neg[2], b.neg[2]
        )

    def test_bad_direction_rejected(self, torus512):
        m = build_mapping(torus512, "default")
        with pytest.raises(ConfigurationError):
            m.exchange_loads(1, "sideways")

    def test_single_message_loads_one_path(self, torus512):
        m = build_mapping(torus512, "default")
        loads = m.single_message_loads(0, 1000)
        assert loads.max_load() == 1000
        assert loads.total_bytes_hops() == 1000 * int(m.buddy_distance()[0])
