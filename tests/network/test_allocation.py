"""Intrepid allocation shape tests — the machine behind Figure 8's shapes."""

import pytest

from repro.network.allocation import (
    CORES_PER_NODE,
    Allocation,
    intrepid_allocation,
    partition_shape,
    supported_cores_per_replica,
    torus_for_nodes,
)
from repro.network.topology import Torus3D
from repro.util.errors import ConfigurationError


class TestPartitionShapes:
    def test_512_nodes_is_8x8x8(self):
        # Fig. 6 uses "512 nodes of Blue Gene/P" drawn as an 8x8x8 partition.
        assert partition_shape(512) == (8, 8, 8)

    def test_z_grows_first_then_saturates_at_32(self):
        # §6.2: "the Z dimension increases from 8 to 32, after which it
        # becomes stagnant. Beyond 4K cores, only X and Y change."
        z_by_cores = {}
        for cores in (1024, 2048, 4096, 16384, 65536):
            nodes = 2 * cores // CORES_PER_NODE
            z_by_cores[cores] = partition_shape(nodes)[2]
        assert z_by_cores[1024] == 8
        assert z_by_cores[4096] == 32
        assert z_by_cores[16384] == 32
        assert z_by_cores[65536] == 32

    def test_unknown_size_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_shape(777)

    def test_shapes_multiply_to_node_count(self):
        for cores in supported_cores_per_replica():
            nodes = 2 * cores // CORES_PER_NODE
            x, y, z = partition_shape(nodes)
            assert x * y * z == nodes


class TestIntrepidAllocation:
    def test_cores_to_nodes(self):
        alloc = intrepid_allocation(1024)
        assert alloc.nodes_per_replica == 256
        assert alloc.total_nodes == 512
        assert alloc.torus.dims == (8, 8, 8)

    def test_paper_max_scale(self):
        # 131,072 cores total = 65,536 per replica (the §6 headline scale).
        alloc = intrepid_allocation(65536)
        assert alloc.total_cores == 131072
        assert alloc.torus.dims == (32, 32, 32)

    def test_non_multiple_of_cores_per_node_rejected(self):
        with pytest.raises(ConfigurationError):
            intrepid_allocation(1026)

    def test_torus_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Allocation(cores_per_replica=1024, torus=Torus3D((2, 2, 2)))


class TestTorusForNodes:
    def test_uses_table_when_available(self):
        assert torus_for_nodes(512).dims == (8, 8, 8)

    def test_small_counts_get_even_z(self):
        for n in (2, 6, 10, 14, 24, 48, 96):
            t = torus_for_nodes(n)
            assert t.nnodes == n
            assert t.dims[2] % 2 == 0

    def test_near_cubic(self):
        x, y, z = torus_for_nodes(64).dims
        assert max(x, y, z) <= 2 * min(x, y, z)

    def test_odd_total_rejected(self):
        with pytest.raises(ConfigurationError):
            torus_for_nodes(7)
