"""Cost-model tests: the α–β–γ phase times behind Figures 8–11."""

import pytest

from repro.network.allocation import intrepid_allocation
from repro.network.costs import CheckpointProfile, CostModel, MachineConstants
from repro.network.mapping import build_mapping
from repro.util.errors import ConfigurationError
from repro.util.units import MiB

JACOBI = CheckpointProfile(nbytes_per_node=16 * MiB)
LEANMD = CheckpointProfile(nbytes_per_node=768 * 1024, serialize_factor=1.5)


@pytest.fixture
def cost():
    return CostModel()


def _mapping(cores, scheme="default"):
    return build_mapping(intrepid_allocation(cores).torus, scheme)


class TestElementaryCosts:
    def test_pack_time_scales_with_bytes(self, cost):
        small = CheckpointProfile(nbytes_per_node=MiB)
        big = CheckpointProfile(nbytes_per_node=4 * MiB)
        assert cost.pack_time(big) == pytest.approx(4 * cost.pack_time(small))

    def test_serialize_factor_slows_pack_and_compare(self, cost):
        plain = CheckpointProfile(nbytes_per_node=MiB)
        nested = CheckpointProfile(nbytes_per_node=MiB, serialize_factor=1.6)
        assert cost.pack_time(nested) == pytest.approx(1.6 * cost.pack_time(plain))
        assert cost.compare_time(nested) == pytest.approx(
            1.6 * cost.compare_time(plain))

    def test_checksum_is_four_instructions_per_byte(self, cost):
        # §4.2: one instruction to copy, four extra to checksum.
        prof = CheckpointProfile(nbytes_per_node=MiB)
        assert cost.checksum_time(prof) == pytest.approx(4 * cost.pack_time(prof))

    def test_checksum_ignores_serialize_factor(self, cost):
        # The digest operates on raw packed bytes, not the PUP traversal.
        a = CheckpointProfile(nbytes_per_node=MiB, serialize_factor=1.0)
        b = CheckpointProfile(nbytes_per_node=MiB, serialize_factor=2.0)
        assert cost.checksum_time(a) == cost.checksum_time(b)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointProfile(nbytes_per_node=-1)
        with pytest.raises(ConfigurationError):
            CheckpointProfile(nbytes_per_node=1, serialize_factor=0)


class TestCheckpointBreakdown:
    def test_default_mapping_grows_then_saturates(self, cost):
        # Figure 8's headline shape: transfer grows 1K -> 4K cores/replica
        # (Z: 8 -> 32) then stays flat to 64K.
        t1k = cost.checkpoint_breakdown(JACOBI, _mapping(1024)).transfer
        t4k = cost.checkpoint_breakdown(JACOBI, _mapping(4096)).transfer
        t64k = cost.checkpoint_breakdown(JACOBI, _mapping(65536)).transfer
        assert t4k > 3 * t1k
        assert t64k == pytest.approx(t4k, rel=0.05)

    def test_column_mapping_constant_overhead(self, cost):
        t1k = cost.checkpoint_breakdown(JACOBI, _mapping(1024, "column")).total
        t64k = cost.checkpoint_breakdown(JACOBI, _mapping(65536, "column")).total
        assert t64k == pytest.approx(t1k, rel=0.05)

    def test_mapping_ordering_for_high_memory_apps(self, cost):
        # column < mixed < default at scale (§6.2).
        at = {
            s: cost.checkpoint_breakdown(JACOBI, _mapping(65536, s)).total
            for s in ("default", "mixed", "column")
        }
        assert at["column"] < at["mixed"] < at["default"]

    def test_checksum_constant_and_compute_dominated(self, cost):
        b1 = cost.checkpoint_breakdown(JACOBI, _mapping(1024), use_checksum=True)
        b64 = cost.checkpoint_breakdown(JACOBI, _mapping(65536), use_checksum=True)
        assert b64.total == pytest.approx(b1.total, rel=0.05)
        # "Most of the time is spent in computing the checksum" (§6.2).
        assert b64.compare > 10 * b64.transfer

    def test_checksum_worse_than_column_for_high_memory_apps(self, cost):
        # §6.2: "overheads for it are even larger than the column-mapping for
        # high memory pressure applications."
        checksum = cost.checkpoint_breakdown(JACOBI, _mapping(65536),
                                             use_checksum=True).total
        column = cost.checkpoint_breakdown(JACOBI, _mapping(65536, "column")).total
        assert checksum > column

    def test_checksum_wins_for_low_memory_apps(self, cost):
        # §6.2: "the checksum method outperforms other schemes" for the MD
        # mini-apps with their small, scattered checkpoints.
        checksum = cost.checkpoint_breakdown(LEANMD, _mapping(65536),
                                             use_checksum=True).total
        column = cost.checkpoint_breakdown(LEANMD, _mapping(65536, "column")).total
        default = cost.checkpoint_breakdown(LEANMD, _mapping(65536)).total
        assert checksum < column
        assert checksum < default

    def test_total_is_sum_of_parts(self, cost):
        b = cost.checkpoint_breakdown(JACOBI, _mapping(4096))
        assert b.total == pytest.approx(b.local + b.transfer + b.compare)


class TestRestartBreakdown:
    def test_strong_cheapest_at_scale(self, cost):
        # Fig. 10: "the strong resilience scheme incurs the least restart
        # overhead for all the mini-apps."
        m = _mapping(65536)
        strong = cost.restart_breakdown(JACOBI, m, scheme="strong").total
        medium = cost.restart_breakdown(JACOBI, m, scheme="medium").total
        assert strong < medium

    def test_strong_mapping_insensitive(self, cost):
        # "we found that mapping does not affect its performance" (§6.3).
        a = cost.restart_breakdown(JACOBI, _mapping(65536, "default"),
                                   scheme="strong").total
        b = cost.restart_breakdown(JACOBI, _mapping(65536, "column"),
                                   scheme="strong").total
        assert b <= a
        assert a < 1.5 * b

    def test_medium_column_mapping_big_win(self, cost):
        # §6.3: topology mapping brings Jacobi3D medium restart 2s -> 0.41s.
        default = cost.restart_breakdown(JACOBI, _mapping(65536, "default"),
                                         scheme="medium").total
        column = cost.restart_breakdown(JACOBI, _mapping(65536, "column"),
                                        scheme="medium").total
        assert default / column > 3.0

    def test_weak_equals_medium_restart(self, cost):
        # §6.3: "the restart overhead is the same for both."
        m = _mapping(4096)
        a = cost.restart_breakdown(JACOBI, m, scheme="medium")
        b = cost.restart_breakdown(JACOBI, m, scheme="weak")
        assert a.total == pytest.approx(b.total)

    def test_small_checkpoint_restart_dominated_by_sync(self, cost):
        # §6.3 (LeanMD): barriers/broadcasts dominate tiny-checkpoint restarts
        # and grow with core count.
        r1k = cost.restart_breakdown(LEANMD, _mapping(1024, "column"),
                                     scheme="medium")
        r64k = cost.restart_breakdown(LEANMD, _mapping(65536, "column"),
                                      scheme="medium")
        assert r64k.reconstruction > r1k.reconstruction
        assert r64k.reconstruction > r64k.transfer

    def test_unknown_scheme_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            cost.restart_breakdown(JACOBI, _mapping(1024), scheme="heroic")


class TestBreakEvenRule:
    def test_checksum_beneficial_matches_gamma_beta_rule(self):
        # §4.2: benefit iff gamma < beta / 4.
        fast_compute = CostModel(MachineConstants(
            serialization_bandwidth=2e9, link_bandwidth=167e6))
        slow_compute = CostModel(MachineConstants(
            serialization_bandwidth=100e6, link_bandwidth=167e6))
        assert fast_compute.checksum_beneficial()
        assert not slow_compute.checksum_beneficial()

    def test_default_machine_not_checksum_favourable(self):
        # On the calibrated machine gamma == beta, so full transfer wins for
        # bandwidth-bound checkpoints (matches Fig. 8's high-memory apps).
        assert not CostModel().checksum_beneficial()
