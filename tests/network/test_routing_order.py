"""Dimension-order routing variants: why routing cannot fix Figure 8.

A natural objection to the paper's mapping work: "just route differently."
These tests show the objection fails — the buddy exchange crosses the
replica bisection no matter the traversal order, so only *placement*
(the column/mixed mappings) removes the bottleneck.
"""

import itertools

import numpy as np
import pytest

from repro.network.mapping import build_mapping
from repro.network.topology import Torus3D
from repro.util.errors import ConfigurationError


class TestDimOrder:
    def test_all_orders_conserve_bytes_hops(self):
        t = Torus3D((6, 4, 8))
        rng = np.random.default_rng(0)
        src = np.stack([rng.integers(0, d, size=40) for d in t.dims], axis=1)
        dst = np.stack([rng.integers(0, d, size=40) for d in t.dims], axis=1)
        sizes = rng.integers(1, 50, size=40)
        reference = None
        for order in itertools.permutations((0, 1, 2)):
            loads = t.route_loads(src, dst, sizes, dim_order=order)
            total = loads.total_bytes_hops()
            if reference is None:
                reference = total
            assert total == reference  # hops are order-independent

    def test_orders_distribute_loads_differently(self):
        t = Torus3D((8, 8, 8))
        src = np.array([[0, 0, 0]])
        dst = np.array([[3, 3, 0]])
        xyz = t.route_loads(src, dst, 1, dim_order=(0, 1, 2))
        yxz = t.route_loads(src, dst, 1, dim_order=(1, 0, 2))
        # X-first turns the corner at (3, 0); Y-first at (0, 3).
        assert xyz.pos[1][3, 0, 0] == 1
        assert yxz.pos[0][0, 3, 0] == 1

    def test_bad_order_rejected(self):
        t = Torus3D((4, 4, 4))
        with pytest.raises(ConfigurationError):
            t.route_loads(np.zeros((1, 3)), np.ones((1, 3)), 1,
                          dim_order=(0, 0, 2))


class TestRoutingCannotFixTheBisection:
    def test_default_mapping_congested_under_every_order(self):
        # The buddy exchange of the default mapping is Z/2-hop traffic along
        # Z only: every dimension order routes it identically, so the Fig. 8
        # bottleneck is untouched by routing policy.
        t = Torus3D((8, 8, 32))
        mapping = build_mapping(t, "default")
        for order in itertools.permutations((0, 1, 2)):
            loads = t.route_loads(mapping.r1_coords, mapping.r2_coords, 1,
                                  dim_order=order)
            assert loads.max_load() == 16  # Z/2, regardless of order

    def test_column_mapping_beats_every_routing_order(self):
        t = Torus3D((8, 8, 32))
        column = build_mapping(t, "column")
        best_routed_default = min(
            t.route_loads(build_mapping(t, "default").r1_coords,
                          build_mapping(t, "default").r2_coords, 1,
                          dim_order=order).max_load()
            for order in itertools.permutations((0, 1, 2))
        )
        assert column.exchange_loads(1).max_load() == 1
        assert best_routed_default >= 16
