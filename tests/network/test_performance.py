"""Performance guards for the vectorized hot paths.

The per-figure benchmarks sweep up to 32K-node tori; these guards catch
accidental de-vectorization (e.g. a per-message Python loop sneaking into the
router or the checksum) before it makes the benchmark suite crawl.
"""

import time

import numpy as np

from repro.network.mapping import build_mapping
from repro.network.topology import Torus3D
from repro.pup.checksum import checkpoint_checksum


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


class TestRoutingThroughput:
    def test_full_machine_exchange_routes_fast(self):
        # 16K buddy messages over the (32, 32, 32) paper-scale partition.
        torus = Torus3D((32, 32, 32))
        mapping = build_mapping(torus, "default")
        loads, elapsed = _timed(mapping.exchange_loads, 1 << 20)
        assert loads.max_load() > 0
        assert elapsed < 10.0, f"routing took {elapsed:.2f}s - devectorized?"

    def test_random_traffic_routes_fast(self):
        torus = Torus3D((32, 32, 32))
        rng = np.random.default_rng(0)
        n = 20_000
        src = rng.integers(0, 32, size=(n, 3))
        dst = rng.integers(0, 32, size=(n, 3))
        _, elapsed = _timed(torus.route_loads, src, dst,
                            rng.integers(1, 100, size=n))
        assert elapsed < 15.0, f"routing took {elapsed:.2f}s"


class TestChecksumThroughput:
    def test_megabyte_scale_checksum_fast(self):
        data = np.random.default_rng(1).integers(
            0, 256, size=32 << 20, dtype=np.uint8)
        _, elapsed = _timed(checkpoint_checksum, data)
        # 32 MiB must stream through the blockwise Fletcher in seconds (a
        # python-level per-word loop would take minutes).
        assert elapsed < 8.0, f"checksum took {elapsed:.2f}s"


class TestSimulatorThroughput:
    def test_event_rate(self):
        from repro.runtime.des import Simulator

        sim = Simulator()
        count = 200_000
        sink = []

        def tick(i):
            if i < count:
                sim.schedule(1.0, tick, i + 1)
            else:
                sink.append(i)

        sim.schedule(0.0, tick, 0)
        _, elapsed = _timed(sim.run)
        assert sink
        rate = count / elapsed
        assert rate > 20_000, f"only {rate:.0f} events/s"
