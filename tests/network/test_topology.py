"""Torus routing and link-load accounting tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import LinkLoads, Torus3D
from repro.util.errors import ConfigurationError


class TestCoordinates:
    def test_rank_round_trip(self):
        t = Torus3D((4, 3, 5))
        ranks = np.arange(t.nnodes)
        coords = t.rank_to_coord(ranks)
        assert np.array_equal(t.coord_to_rank(coords), ranks)

    def test_txyz_order_x_fastest_z_slowest(self):
        t = Torus3D((4, 4, 4))
        assert list(t.rank_to_coord(np.array([0]))[0]) == [0, 0, 0]
        assert list(t.rank_to_coord(np.array([1]))[0]) == [1, 0, 0]
        assert list(t.rank_to_coord(np.array([4]))[0]) == [0, 1, 0]
        assert list(t.rank_to_coord(np.array([16]))[0]) == [0, 0, 1]

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            Torus3D((0, 4, 4))
        with pytest.raises(ConfigurationError):
            Torus3D((4, 4))  # type: ignore[arg-type]


class TestHopDistance:
    def test_adjacent(self):
        t = Torus3D((8, 8, 8))
        assert t.hop_distance(np.array([[0, 0, 0]]), np.array([[1, 0, 0]]))[0] == 1

    def test_wraparound_shorter_path(self):
        t = Torus3D((8, 8, 8))
        # 0 -> 7 is one hop through the wrap link, not seven.
        assert t.hop_distance(np.array([[0, 0, 0]]), np.array([[7, 0, 0]]))[0] == 1

    def test_self_distance_zero(self):
        t = Torus3D((4, 4, 4))
        c = np.array([[2, 1, 3]])
        assert t.hop_distance(c, c)[0] == 0

    def test_manhattan_on_torus(self):
        t = Torus3D((8, 8, 8))
        d = t.hop_distance(np.array([[0, 0, 0]]), np.array([[4, 3, 6]]))[0]
        assert d == 4 + 3 + 2  # 6 is 2 hops backwards around the ring


class TestRouteLoads:
    def test_single_hop_single_link(self):
        t = Torus3D((4, 4, 4))
        loads = t.route_loads(np.array([[0, 0, 0]]), np.array([[1, 0, 0]]), 100)
        assert loads.max_load() == 100
        assert loads.total_bytes_hops() == 100
        assert loads.nonzero_links() == 1

    def test_bytes_times_hops_conservation(self):
        t = Torus3D((8, 8, 8))
        rng = np.random.default_rng(0)
        src = rng.integers(0, 8, size=(50, 3))
        dst = rng.integers(0, 8, size=(50, 3))
        sizes = rng.integers(1, 1000, size=50)
        loads = t.route_loads(src, dst, sizes)
        hops = t.hop_distance(src, dst)
        assert loads.total_bytes_hops() == int((hops * sizes).sum())

    def test_zero_hop_message_loads_nothing(self):
        t = Torus3D((4, 4, 4))
        c = np.array([[1, 2, 3]])
        loads = t.route_loads(c, c, 999)
        assert loads.max_load() == 0
        assert loads.total_bytes_hops() == 0

    def test_backward_routing_uses_negative_links(self):
        t = Torus3D((8, 1, 1))
        loads = t.route_loads(np.array([[3, 0, 0]]), np.array([[1, 0, 0]]), 10)
        assert loads.pos[0].sum() == 0
        assert loads.neg[0].sum() == 20  # two hops x 10 bytes

    def test_dimension_order_x_then_y_then_z(self):
        t = Torus3D((4, 4, 4))
        loads = t.route_loads(np.array([[0, 0, 0]]), np.array([[1, 1, 0]]), 1)
        # X hop happens at y=0 (before turning), Y hop at x=1 (after).
        assert loads.pos[0][0, 0, 0] == 1
        assert loads.pos[1][1, 0, 0] == 1

    def test_paper_figure6_default_mapping_bottleneck(self):
        # Fig. 6(a): 8-long dimension split in halves, buddy = +4 along Z:
        # per-link message counts along the columns are 1,2,3,4,3,2,1.
        t = Torus3D((1, 1, 8))
        src = np.array([[0, 0, z] for z in range(4)])
        dst = np.array([[0, 0, z + 4] for z in range(4)])
        loads = t.route_loads(src, dst, 1)
        assert loads.max_load() == 4

    def test_scalar_and_array_sizes_agree(self):
        t = Torus3D((4, 4, 4))
        src = np.array([[0, 0, 0], [1, 1, 1]])
        dst = np.array([[2, 0, 0], [1, 3, 1]])
        a = t.route_loads(src, dst, 7)
        b = t.route_loads(src, dst, np.array([7, 7]))
        for d in range(3):
            assert np.array_equal(a.pos[d], b.pos[d])
            assert np.array_equal(a.neg[d], b.neg[d])

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(2, 8),
           st.integers(1, 30), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_conservation_and_nonnegativity(self, x, y, z, n, seed):
        t = Torus3D((x, y, z))
        rng = np.random.default_rng(seed)
        src = np.stack([rng.integers(0, d, size=n) for d in (x, y, z)], axis=1)
        dst = np.stack([rng.integers(0, d, size=n) for d in (x, y, z)], axis=1)
        sizes = rng.integers(1, 100, size=n)
        loads = t.route_loads(src, dst, sizes)
        hops = t.hop_distance(src, dst)
        assert loads.total_bytes_hops() == int((hops * sizes).sum())
        assert loads.max_load() <= int(sizes.sum())


class TestLinkLoads:
    def test_add_accumulates(self):
        t = Torus3D((4, 4, 4))
        a = t.route_loads(np.array([[0, 0, 0]]), np.array([[1, 0, 0]]), 5)
        b = t.route_loads(np.array([[0, 0, 0]]), np.array([[1, 0, 0]]), 7)
        a.add(b)
        assert a.max_load() == 12

    def test_add_rejects_different_tori(self):
        a = LinkLoads.zeros((4, 4, 4))
        b = LinkLoads.zeros((8, 8, 8))
        with pytest.raises(ConfigurationError):
            a.add(b)

    def test_plane_loads_shape(self):
        t = Torus3D((4, 4, 6))
        loads = t.route_loads(np.array([[0, 0, 0]]), np.array([[0, 0, 3]]), 1)
        assert loads.plane_loads(2).shape == (6,)
