"""Tests for the campaign server's long-lived worker pool."""

import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.harness import WorkerPool


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


class TestWorkerPool:
    def test_width_clamped_to_cores(self):
        pool = WorkerPool(workers=10_000)
        assert pool.width == (os.cpu_count() or 1)
        assert pool.mode == "unstarted"

    def test_submit_and_shutdown(self):
        pool = WorkerPool(workers=1)
        try:
            assert pool.submit(abs, -3).result(timeout=60) == 3
            assert pool.mode in ("processes", "threads")
        finally:
            pool.shutdown()
        assert pool.mode == "shutdown"

    def test_fall_back_to_threads_is_one_way(self):
        pool = WorkerPool(workers=1)
        try:
            pool.fall_back_to_threads()
            assert pool.mode == "threads"
            assert pool.submit(abs, -5).result(timeout=60) == 5
            assert pool.mode == "threads"
        finally:
            pool.shutdown()


class TestOrphanWatchdog:
    def test_workers_exit_when_parent_is_sigkilled(self, tmp_path):
        """A SIGKILLed pool owner must not leave workers behind.

        The server's durability contract is "kill -9 me and restart"; the
        orphan watchdog is what keeps every such kill from stranding one
        ProcessPoolExecutor worker blocked on the call queue forever.
        """
        script = textwrap.dedent("""
            import os, sys, time
            from repro.harness import WorkerPool

            pool = WorkerPool(workers=1)
            pool.submit(abs, -1).result(timeout=60)
            if pool.mode != "processes":
                print("WORKER -1", flush=True)  # no processes to orphan
                sys.exit(0)
            worker_pid = next(iter(pool.executor._processes))
            print(f"WORKER {worker_pid}", flush=True)
            time.sleep(300)
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen([sys.executable, "-u", "-c", script],
                                stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert line.startswith("WORKER "), line
            worker_pid = int(line.split()[1])
            if worker_pid < 0:
                return  # thread fallback on this platform: nothing to test
            assert _alive(worker_pid)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and _alive(worker_pid):
                time.sleep(0.2)
            assert not _alive(worker_pid), \
                "orphaned pool worker survived its parent's SIGKILL"
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
