"""fan_out error-surfacing tests: failures name the offending call."""

import time

import pytest

from repro.harness.campaign import FanOutError, fan_out


def _double_or_boom(x):
    """Module-level so worker processes can import it by reference."""
    if x == 3:
        raise ValueError("x too spicy")
    return 2 * x


def _slow_boom(x):
    """Fails *slowly*, so sibling successes land in the same wait batch."""
    if x == 3:
        time.sleep(0.4)
        raise ValueError("x too spicy")
    return 2 * x


class TestFanOut:
    def test_success_returns_results_in_input_order(self):
        assert fan_out(_double_or_boom, [(1,), (2,), (4,)], 2) == [2, 4, 8]

    def test_on_result_fires_per_completion_with_position(self):
        seen = {}
        fan_out(_double_or_boom, [(1,), (2,)], 2,
                on_result=lambda i, r: seen.__setitem__(i, r))
        assert seen == {0: 2, 1: 4}

    def test_task_error_names_the_failing_args_tuple(self):
        with pytest.raises(FanOutError) as exc_info:
            fan_out(_double_or_boom, [(1,), (3,), (2,)], 2)
        err = exc_info.value
        assert err.args_tuple == (3,)
        assert err.fn_name == "_double_or_boom"
        assert "_double_or_boom(3,)" in str(err)
        assert "ValueError" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_completed_results_still_commit_before_the_error(self):
        committed = {}
        with pytest.raises(FanOutError):
            fan_out(_slow_boom, [(1,), (3,)], 2,
                    on_result=lambda i, r: committed.__setitem__(i, r))
        assert committed == {0: 2}

    def test_unpicklable_fn_falls_back_to_serial(self):
        def local_fn(x):  # nested functions cannot pickle
            return x

        assert fan_out(local_fn, [(1,)], 2) is None
