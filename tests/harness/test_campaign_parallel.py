"""Parallel campaign runner tests: worker pool vs serial bitwise identity."""

import numpy as np
import pytest

from repro.harness.campaign import run_campaign

_KWARGS = dict(nodes_per_replica=2, total_iterations=60,
               checkpoint_interval=2.0, hard_mtbf=15.0, horizon=2000.0)


class TestParallelCampaign:
    def test_workers_produce_bitwise_identical_summary(self):
        serial = run_campaign("synthetic", seeds=range(4), **_KWARGS)
        parallel = run_campaign("synthetic", seeds=range(4), workers=4,
                                **_KWARGS)
        assert parallel.summary == serial.summary
        assert parallel.seeds == serial.seeds
        for a, b in zip(serial.reports, parallel.reports):
            assert a.final_time == b.final_time
            assert a.iterations_completed == b.iterations_completed
            assert a.checkpoints_completed == b.checkpoints_completed
            assert a.recoveries == b.recoveries
            assert set(a.digests) == set(b.digests)
            for rank in a.digests:
                assert np.array_equal(a.digests[rank], b.digests[rank])

    def test_reports_ordered_by_seed(self):
        seeds = [7, 1, 5, 3]
        result = run_campaign("synthetic", seeds=seeds, workers=2, **_KWARGS)
        assert result.seeds == seeds
        assert len(result.reports) == len(seeds)

    def test_workers_capped_by_seed_count(self):
        result = run_campaign("synthetic", seeds=[0], workers=8, **_KWARGS)
        assert result.summary.runs == 1

    def test_workers_one_stays_serial(self):
        result = run_campaign("synthetic", seeds=range(2), workers=1,
                              **_KWARGS)
        assert result.summary.runs == 2

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign("synthetic", seeds=range(2), workers=0, **_KWARGS)

    def test_experiment_errors_propagate(self):
        with pytest.raises(Exception):
            run_campaign("no-such-app", seeds=range(2), workers=2, **_KWARGS)
