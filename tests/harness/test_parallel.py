"""Determinism contract of the space-partitioned parallel DES mode.

The entire value of :mod:`repro.harness.parallel` is one promise: the merged
canonical trace is *byte-identical* across every decomposition — 1 partition,
N partitions in-process, N partitions across forked workers — for the same
:class:`ParallelScenario`.  These tests assert that promise for both recovery
schemes with mid-run hard faults, plus the worker-clamp accounting that
mirrors the campaign runner (requested vs effective vs cpu_count).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.parallel import (
    ParallelScenario,
    effective_parallel_workers,
    fault_plan,
    run_parallel,
)
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.scale_smoke


def _scenario(scheme: str, **overrides) -> ParallelScenario:
    kwargs = dict(
        nodes_per_replica=64,
        total_iterations=6,
        iteration_seconds=0.5,
        heartbeat_interval=1.0,
        scheme=scheme,
        snapshot_interval=2.0,
        n_faults=2,
        fault_window=(0.1, 0.4),
        spare_boot_time=2.0,
        horizon=18.0,
        seed=5,
    )
    kwargs.update(overrides)
    return ParallelScenario(**kwargs)


class TestTraceDeterminism:
    @pytest.mark.parametrize("scheme", ["strong", "weak"])
    def test_trace_identical_across_partition_counts(self, scheme):
        scenario = _scenario(scheme)
        reports = {p: run_parallel(scenario, partitions=p, workers=1,
                                   trace=True)
                   for p in (1, 4, 8)}
        baseline = reports[1]
        assert baseline.completed
        assert baseline.trace, "trace collection returned nothing"
        for p, report in reports.items():
            assert report.completed, f"partitions={p} did not complete"
            assert report.trace == baseline.trace, f"partitions={p} diverged"
            assert report.trace_digest == baseline.trace_digest
        # Partitioned runs really did window-step rather than free-run.
        assert reports[4].windows > 1
        assert reports[8].windows >= reports[4].windows

        # The scenario exercised what the contract claims: deaths detected,
        # spares booted, tasks restored, and forward progress resumed.
        kinds = {line.split()[1] for line in baseline.trace}
        assert {"iter", "kill", "detect", "revive", "restore"} <= kinds

    def test_fault_free_decomposition_also_identical(self):
        scenario = _scenario("strong", n_faults=0, horizon=10.0)
        single = run_parallel(scenario, partitions=1, trace=True)
        split = run_parallel(scenario, partitions=4, trace=True)
        assert single.completed and split.completed
        assert single.trace_digest == split.trace_digest

    def test_forked_workers_match_inprocess(self):
        """The fork/pipe machinery itself, exercised via ``force_processes``
        so 1-CPU runners cover it too (the CPU clamp would otherwise fall
        back in-process and leave the pipes untested)."""
        scenario = _scenario("strong", nodes_per_replica=32, horizon=14.0)
        inproc = run_parallel(scenario, partitions=4, workers=1, trace=True)
        forked = run_parallel(scenario, partitions=4, workers=2, trace=True,
                              force_processes=True)
        assert forked.completed
        assert forked.effective_workers == 2
        assert forked.trace_digest == inproc.trace_digest

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="needs >1 CPU for a real parallel run")
    def test_multiprocess_trace_identical_on_multicore(self):
        scenario = _scenario("weak")
        single = run_parallel(scenario, partitions=1, trace=True)
        multi = run_parallel(scenario, partitions=4, workers=4, trace=True)
        assert multi.effective_workers > 1
        assert multi.trace_digest == single.trace_digest


class TestPartitionMetrics:
    """Decomposition invariance of per-partition metric snapshots: the
    merged snapshot must equal the single-partition one for every partition
    count and for forked workers (the counters exported by
    ``_Partition.metrics_snapshot`` are chosen to be decomposition-invariant
    — see the module for what is deliberately excluded)."""

    def test_merged_snapshot_equals_single_partition(self):
        scenario = _scenario("strong")
        single = run_parallel(scenario, partitions=1, collect_metrics=True)
        assert single.metrics is not None
        assert single.metrics["counters"], "snapshot exported no counters"
        for p in (2, 4, 8):
            split = run_parallel(scenario, partitions=p,
                                 collect_metrics=True)
            assert split.partition_metrics is not None
            assert len(split.partition_metrics) == p
            assert split.metrics == single.metrics, f"partitions={p} diverged"

    def test_forked_workers_merge_identically(self):
        scenario = _scenario("strong", nodes_per_replica=32, horizon=14.0)
        inproc = run_parallel(scenario, partitions=4, collect_metrics=True)
        forked = run_parallel(scenario, partitions=4, workers=2,
                              collect_metrics=True, force_processes=True)
        assert forked.metrics == inproc.metrics

    def test_series_sampling_keeps_trace_identical(self):
        """Arming per-partition series sampling adds heap events but must
        not perturb the canonical trace, and the merged series covers the
        run's counters."""
        scenario = _scenario("strong", n_faults=0, horizon=10.0)
        plain = run_parallel(scenario, partitions=4, trace=True)
        sampled = run_parallel(scenario, partitions=4, trace=True,
                               collect_metrics=True, series_interval=2.0)
        assert sampled.trace_digest == plain.trace_digest
        assert sampled.series is not None
        assert sampled.series["times"], "no samples recorded"
        assert any(k.startswith("tasks.") for k in sampled.series["counters"])


class TestWorkerAccounting:
    def test_clamp_mirrors_campaign_rule(self):
        cpus = os.cpu_count() or 1
        assert effective_parallel_workers(None, 8) == 1
        assert effective_parallel_workers(4, 2) == min(4, 2, cpus)
        assert effective_parallel_workers(64, 64) == min(64, cpus)

    def test_report_records_requested_vs_effective(self):
        scenario = _scenario("strong", n_faults=0, nodes_per_replica=8,
                             horizon=6.0)
        report = run_parallel(scenario, partitions=4, workers=8)
        assert report.requested_workers == 8
        assert report.effective_workers == min(8, 4, os.cpu_count() or 1)
        assert report.cpu_count == (os.cpu_count() or 1)
        assert report.partitions == 4
        assert len(report.per_partition_events) == 4
        assert sum(report.per_partition_events) == report.events_processed

    def test_more_partitions_than_ranks_rejected(self):
        scenario = _scenario("strong", nodes_per_replica=4, n_faults=2)
        with pytest.raises(ConfigurationError):
            run_parallel(scenario, partitions=8)


class TestFaultPlan:
    def test_seeded_plan_is_deterministic_and_distinct(self):
        scenario = _scenario("strong", n_faults=2)
        plan = fault_plan(scenario)
        assert plan == fault_plan(scenario)
        assert len(plan) == 2
        ranks = [rank for _, _, rank in plan]
        assert len(set(ranks)) == len(ranks)
        lo, hi = scenario.fault_window
        for t, replica, rank in plan:
            assert lo * scenario.horizon <= t <= hi * scenario.horizon
            assert replica in (0, 1)
            assert 0 <= rank < scenario.nodes_per_replica

    def test_different_seed_different_plan(self):
        a = fault_plan(_scenario("strong", seed=1))
        b = fault_plan(_scenario("strong", seed=2))
        assert a != b
