"""Determinism contract of the space-partitioned parallel DES mode.

The entire value of :mod:`repro.harness.parallel` is one promise: the merged
canonical trace is *byte-identical* across every decomposition — 1 partition,
N partitions in-process, N partitions across forked workers — for the same
:class:`ParallelScenario`.  These tests assert that promise for both recovery
schemes with mid-run hard faults, plus the worker-clamp accounting that
mirrors the campaign runner (requested vs effective vs cpu_count).
"""

from __future__ import annotations

import os

import pytest

import repro.harness.parallel as parallel_mod
from repro.harness.parallel import (
    ParallelScenario,
    ParallelWorkerError,
    effective_parallel_workers,
    fault_plan,
    run_parallel,
)
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.scale_smoke


def _scenario(scheme: str, **overrides) -> ParallelScenario:
    kwargs = dict(
        nodes_per_replica=64,
        total_iterations=6,
        iteration_seconds=0.5,
        heartbeat_interval=1.0,
        scheme=scheme,
        snapshot_interval=2.0,
        n_faults=2,
        fault_window=(0.1, 0.4),
        spare_boot_time=2.0,
        horizon=18.0,
        seed=5,
    )
    kwargs.update(overrides)
    return ParallelScenario(**kwargs)


class TestTraceDeterminism:
    @pytest.mark.parametrize("scheme", ["strong", "weak"])
    def test_trace_identical_across_partition_counts(self, scheme):
        scenario = _scenario(scheme)
        reports = {p: run_parallel(scenario, partitions=p, workers=1,
                                   trace=True)
                   for p in (1, 4, 8)}
        baseline = reports[1]
        assert baseline.completed
        assert baseline.trace, "trace collection returned nothing"
        for p, report in reports.items():
            assert report.completed, f"partitions={p} did not complete"
            assert report.trace == baseline.trace, f"partitions={p} diverged"
            assert report.trace_digest == baseline.trace_digest
        # Partitioned runs really did window-step rather than free-run.
        assert reports[4].windows > 1
        assert reports[8].windows >= reports[4].windows

        # The scenario exercised what the contract claims: deaths detected,
        # spares booted, tasks restored, and forward progress resumed.
        kinds = {line.split()[1] for line in baseline.trace}
        assert {"iter", "kill", "detect", "revive", "restore"} <= kinds

    def test_fault_free_decomposition_also_identical(self):
        scenario = _scenario("strong", n_faults=0, horizon=10.0)
        single = run_parallel(scenario, partitions=1, trace=True)
        split = run_parallel(scenario, partitions=4, trace=True)
        assert single.completed and split.completed
        assert single.trace_digest == split.trace_digest

    def test_forked_workers_match_inprocess(self):
        """The fork/pipe machinery itself, exercised via ``force_processes``
        so 1-CPU runners cover it too (the CPU clamp would otherwise fall
        back in-process and leave the pipes untested)."""
        scenario = _scenario("strong", nodes_per_replica=32, horizon=14.0)
        inproc = run_parallel(scenario, partitions=4, workers=1, trace=True)
        forked = run_parallel(scenario, partitions=4, workers=2, trace=True,
                              force_processes=True)
        assert forked.completed
        assert forked.effective_workers == 2
        assert forked.trace_digest == inproc.trace_digest

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="needs >1 CPU for a real parallel run")
    def test_multiprocess_trace_identical_on_multicore(self):
        scenario = _scenario("weak")
        single = run_parallel(scenario, partitions=1, trace=True)
        multi = run_parallel(scenario, partitions=4, workers=4, trace=True)
        assert multi.effective_workers > 1
        assert multi.trace_digest == single.trace_digest


class TestPartitionMetrics:
    """Decomposition invariance of per-partition metric snapshots: the
    merged snapshot must equal the single-partition one for every partition
    count and for forked workers (the counters exported by
    ``_Partition.metrics_snapshot`` are chosen to be decomposition-invariant
    — see the module for what is deliberately excluded)."""

    def test_merged_snapshot_equals_single_partition(self):
        scenario = _scenario("strong")
        single = run_parallel(scenario, partitions=1, collect_metrics=True)
        assert single.metrics is not None
        assert single.metrics["counters"], "snapshot exported no counters"
        for p in (2, 4, 8):
            split = run_parallel(scenario, partitions=p,
                                 collect_metrics=True)
            assert split.partition_metrics is not None
            assert len(split.partition_metrics) == p
            assert split.metrics == single.metrics, f"partitions={p} diverged"

    def test_forked_workers_merge_identically(self):
        scenario = _scenario("strong", nodes_per_replica=32, horizon=14.0)
        inproc = run_parallel(scenario, partitions=4, collect_metrics=True)
        forked = run_parallel(scenario, partitions=4, workers=2,
                              collect_metrics=True, force_processes=True)
        assert forked.metrics == inproc.metrics

    def test_series_sampling_keeps_trace_identical(self):
        """Arming per-partition series sampling adds heap events but must
        not perturb the canonical trace, and the merged series covers the
        run's counters."""
        scenario = _scenario("strong", n_faults=0, horizon=10.0)
        plain = run_parallel(scenario, partitions=4, trace=True)
        sampled = run_parallel(scenario, partitions=4, trace=True,
                               collect_metrics=True, series_interval=2.0)
        assert sampled.trace_digest == plain.trace_digest
        assert sampled.series is not None
        assert sampled.series["times"], "no samples recorded"
        assert any(k.startswith("tasks.") for k in sampled.series["counters"])


class TestWorkerAccounting:
    def test_clamp_mirrors_campaign_rule(self):
        cpus = os.cpu_count() or 1
        assert effective_parallel_workers(None, 8) == 1
        assert effective_parallel_workers(4, 2) == min(4, 2, cpus)
        assert effective_parallel_workers(64, 64) == min(64, cpus)

    def test_report_records_requested_vs_effective(self):
        scenario = _scenario("strong", n_faults=0, nodes_per_replica=8,
                             horizon=6.0)
        report = run_parallel(scenario, partitions=4, workers=8)
        assert report.requested_workers == 8
        assert report.effective_workers == min(8, 4, os.cpu_count() or 1)
        assert report.cpu_count == (os.cpu_count() or 1)
        assert report.partitions == 4
        assert len(report.per_partition_events) == 4
        assert sum(report.per_partition_events) == report.events_processed

    def test_more_partitions_than_ranks_rejected(self):
        scenario = _scenario("strong", nodes_per_replica=4, n_faults=2)
        with pytest.raises(ConfigurationError):
            run_parallel(scenario, partitions=8)


class TestSharedMemoryPlane:
    """The shm data plane must be a pure representation change: same trace,
    same metrics, different bytes-ownership — in-process and forked."""

    def test_inprocess_shm_trace_identical(self):
        scenario = _scenario("strong")
        plain = run_parallel(scenario, partitions=4, trace=True)
        shm = run_parallel(scenario, partitions=4, trace=True,
                           shared_memory=True)
        assert plain.data_plane == "inprocess"
        assert shm.data_plane == "inprocess-shm"
        assert shm.trace_digest == plain.trace_digest

    def test_forked_planes_trace_identical(self):
        """Both multiprocess planes, forced on so 1-CPU runners fork too,
        against the in-process reference — with mid-run faults."""
        scenario = _scenario("strong", nodes_per_replica=32, horizon=14.0)
        ref = run_parallel(scenario, partitions=4, trace=True)
        pipes = run_parallel(scenario, partitions=4, workers=2, trace=True,
                             force_processes=True, shared_memory=False)
        shm = run_parallel(scenario, partitions=4, workers=2, trace=True,
                           force_processes=True, shared_memory=True)
        assert pipes.data_plane == "pipes"
        assert shm.data_plane == "shm"
        assert pipes.trace_digest == ref.trace_digest
        assert shm.trace_digest == ref.trace_digest
        # The shm report carries the barrier/RSS breakdowns.
        assert shm.barrier_wait_s is not None and len(shm.barrier_wait_s) == 2
        assert shm.window_barrier_s is not None
        assert len(shm.window_barrier_s) == shm.windows
        assert shm.worker_peak_rss_mib is not None
        assert all(r > 0 for r in shm.worker_peak_rss_mib)

    def test_wall_s_populated_once_by_run_parallel(self):
        scenario = _scenario("strong", n_faults=0, nodes_per_replica=8,
                             horizon=6.0)
        for kwargs in ({}, {"shared_memory": True}):
            report = run_parallel(scenario, partitions=2, **kwargs)
            assert report.wall_s > 0.0
            assert report.loop_wall_s > 0.0
            assert report.wall_s >= report.loop_wall_s

    def test_ring_overflow_raises_clean_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_RING_SLOTS", "1")
        scenario = _scenario("strong", n_faults=0, horizon=8.0)
        with pytest.raises(ParallelWorkerError, match="RING_SLOTS"):
            run_parallel(scenario, partitions=4, shared_memory=True)


class TestWorkerCrash:
    """A worker dying mid-window must surface a clean error naming its
    partitions — on both planes — instead of hanging the barrier or pipe."""

    @pytest.mark.parametrize("shared_memory", [False, True])
    def test_crash_names_partitions(self, monkeypatch, shared_memory):
        monkeypatch.setattr(parallel_mod, "_TEST_CRASH", (1, 2))
        scenario = _scenario("strong", n_faults=0, nodes_per_replica=16,
                             horizon=10.0)
        with pytest.raises(ParallelWorkerError) as err:
            run_parallel(scenario, partitions=4, workers=2,
                         force_processes=True, shared_memory=shared_memory)
        # Worker 1 owns partitions [1, 3] (pipes, round-robin) or [2, 3]
        # (shm, contiguous); either way the error names them.
        assert err.value.partitions, "error did not name any partition"
        assert all(p in (1, 2, 3) for p in err.value.partitions)
        assert "partition" in str(err.value)


class TestCoordinatedConsensus:
    """The partitioned checkpoint-consensus protocol: byte-identical traces
    across decompositions and planes, invariant round counts, and restores
    that honor the globally decided line."""

    def _coord(self, **overrides) -> ParallelScenario:
        # Pauses stall ~17% of compute time and coordinated restores roll
        # further back than strong snapshots, so give the run more headroom
        # than the strong-scheme scenarios.
        overrides.setdefault("horizon", 30.0)
        overrides.setdefault("coordinated_interval", 1.5)
        overrides.setdefault("coordinated_pause", 0.25)
        return _scenario("coordinated", **overrides)

    def test_trace_identical_across_partition_counts(self):
        scenario = self._coord()
        reports = {p: run_parallel(scenario, partitions=p, trace=True)
                   for p in (1, 4, 8)}
        baseline = reports[1]
        assert baseline.completed
        assert baseline.consensus_rounds > 0
        for p, report in reports.items():
            assert report.trace_digest == baseline.trace_digest, \
                f"partitions={p} diverged"
            assert report.consensus_rounds == baseline.consensus_rounds
        kinds = {line.split()[1] for line in baseline.trace}
        assert {"iter", "kill", "detect", "revive", "restore", "ckpt"} \
            <= kinds

    def test_forked_planes_match_inprocess(self):
        scenario = self._coord(nodes_per_replica=32, horizon=14.0)
        ref = run_parallel(scenario, partitions=4, trace=True)
        for shm in (False, True):
            forked = run_parallel(scenario, partitions=4, workers=2,
                                  trace=True, force_processes=True,
                                  shared_memory=shm)
            assert forked.trace_digest == ref.trace_digest
            assert forked.consensus_rounds == ref.consensus_rounds

    def test_restores_use_decided_checkpoint_line(self):
        """Every coordinated restore target must be a previously decided
        global checkpoint line (never a partition-local snapshot)."""
        report = run_parallel(self._coord(), partitions=4, trace=True)
        decided: set[int] = set()
        restores = 0
        for line in report.trace:
            parts = line.split()
            kind, value = parts[1], int(parts[5][1:])
            if kind == "ckpt":
                decided.add(value)
            elif kind == "restore":
                restores += 1
                assert value in decided | {0}, \
                    f"restore to {value}, decided lines {sorted(decided)}"
        assert restores > 0

    def test_checkpoint_metrics_invariant(self):
        scenario = self._coord()
        single = run_parallel(scenario, partitions=1, collect_metrics=True)
        key = "consensus.task_checkpoints"
        assert single.metrics["counters"][key] > 0
        for p in (4, 8):
            split = run_parallel(scenario, partitions=p,
                                 collect_metrics=True)
            assert split.metrics == single.metrics

    def test_pause_does_not_break_determinism(self):
        with_pause = self._coord(n_faults=0, horizon=10.0)
        no_pause = self._coord(n_faults=0, horizon=10.0,
                               coordinated_pause=0.0)
        a1 = run_parallel(with_pause, partitions=1, trace=True)
        a4 = run_parallel(with_pause, partitions=4, trace=True)
        assert a1.trace_digest == a4.trace_digest
        b1 = run_parallel(no_pause, partitions=1, trace=True)
        assert b1.trace_digest != a1.trace_digest or not a1.completed, \
            "pause had no observable effect — scenario too short?"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _scenario("coordinated")  # no interval
        with pytest.raises(ConfigurationError):
            _scenario("strong", coordinated_interval=-1.0)
        with pytest.raises(ConfigurationError):
            _scenario("coordinated", coordinated_interval=1.0,
                      coordinated_pause=1.0)  # pause >= interval
        with pytest.raises(ConfigurationError):
            _scenario("strong", coordinated_interval=1.0,
                      coordinated_pause=-0.1)


class TestFaultPlan:
    def test_seeded_plan_is_deterministic_and_distinct(self):
        scenario = _scenario("strong", n_faults=2)
        plan = fault_plan(scenario)
        assert plan == fault_plan(scenario)
        assert len(plan) == 2
        ranks = [rank for _, _, rank in plan]
        assert len(set(ranks)) == len(ranks)
        lo, hi = scenario.fault_window
        for t, replica, rank in plan:
            assert lo * scenario.horizon <= t <= hi * scenario.horizon
            assert replica in (0, 1)
            assert 0 <= rank < scenario.nodes_per_replica

    def test_different_seed_different_plan(self):
        a = fault_plan(_scenario("strong", seed=1))
        b = fault_plan(_scenario("strong", seed=2))
        assert a != b
