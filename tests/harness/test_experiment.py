"""Experiment-helper tests."""

import pytest

from repro.harness.experiment import forward_path_overhead, run_acr_experiment
from repro.harness.report import format_table


class TestRunExperiment:
    def test_failure_free_completes(self):
        result = run_acr_experiment("jacobi3d-charm", nodes_per_replica=2,
                                    total_iterations=60, seed=1)
        assert result.ok
        assert result.report.result_correct

    def test_poisson_faults_injected_and_survived(self):
        result = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=4, scheme="medium",
            total_iterations=250, checkpoint_interval=3.0,
            hard_mtbf=8.0, sdc_mtbf=12.0, horizon=4000.0, seed=2,
        )
        rep = result.report
        assert rep.hard_injected + rep.sdc_injected > 0
        assert rep.completed
        assert rep.aborted_reason is None

    def test_scheme_accepts_strings(self):
        result = run_acr_experiment("synthetic", nodes_per_replica=2,
                                    scheme="weak", mapping="column",
                                    total_iterations=50, seed=3)
        assert result.ok


class TestForwardPathOverhead:
    def test_overhead_positive_and_small(self):
        frac, report = forward_path_overhead("jacobi3d-charm",
                                             nodes_per_replica=2,
                                             checkpoints=3,
                                             checkpoint_interval=5.0)
        assert report.checkpoints_completed >= 2
        assert 0 < frac < 0.25

    def test_checksum_changes_measured_overhead(self):
        a, _ = forward_path_overhead("jacobi3d-charm", nodes_per_replica=2,
                                     checkpoints=3, use_checksum=False)
        b, _ = forward_path_overhead("jacobi3d-charm", nodes_per_replica=2,
                                     checkpoints=3, use_checksum=True)
        assert a != b


class TestReportTable:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 123456.789]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_small_and_large_floats_scientific(self):
        text = format_table(["v"], [[1e-9], [1e9]])
        assert "e-09" in text and "e+09" in text


class TestModelVsSimulatorCrossValidation:
    def test_measured_forward_overhead_matches_cost_model(self):
        """The DES charges exactly the cost model's per-checkpoint time, so
        the measured failure-free overhead fraction must track
        breakdown.total / (interval + breakdown.total)."""
        from repro.core import ACR, ACRConfig
        from repro.network.costs import CostModel

        interval = 5.0
        acr = ACR("jacobi3d-charm", nodes_per_replica=2,
                  config=ACRConfig(checkpoint_interval=interval,
                                   app_scale=1e-4, seed=0))
        breakdown = CostModel().checkpoint_breakdown(acr.profile, acr.mapping)
        predicted = breakdown.total / (interval + breakdown.total)
        measured, report = forward_path_overhead(
            "jacobi3d-charm", nodes_per_replica=2, checkpoints=6,
            checkpoint_interval=interval)
        assert report.checkpoints_completed >= 4
        assert measured == pytest.approx(predicted, rel=0.25)
