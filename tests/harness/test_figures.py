"""Figure data-generator tests: the paper's qualitative claims per figure."""

import pytest

from repro.harness.figures import (
    fig6_data,
    fig8_data,
    fig9_fig11_data,
    fig10_data,
    fig12_data,
)


class TestFig6:
    def test_paper_link_counts_on_512_nodes(self):
        rows = {r.mapping: r for r in fig6_data((8, 8, 8))}
        # The paper's Fig. 6 tags: default up to 4 messages per link,
        # column exactly 1, mixed up to 2.
        assert rows["default"].max_link_load == 4
        assert rows["column"].max_link_load == 1
        assert rows["mixed"].max_link_load == 2

    def test_hop_counts(self):
        rows = {r.mapping: r for r in fig6_data((8, 8, 8))}
        assert rows["default"].buddy_hops_max == 4
        assert rows["column"].buddy_hops_max == 1
        assert rows["mixed"].buddy_hops_max == 2


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig8_data(apps=("jacobi3d-charm", "leanmd"),
                         cores_axis=(1024, 4096, 65536))

    def pick(self, rows, app, cores, method):
        for r in rows:
            if (r.app, r.cores_per_replica, r.method) == (app, cores, method):
                return r
        raise KeyError((app, cores, method))

    def test_default_mapping_fourfold_growth(self, rows):
        # "we observe a four-fold increase in the overheads (e.g., from 0.6s
        # to 2s in the case of Jacobi3D)" between 1K and 64K cores/replica.
        t1 = self.pick(rows, "jacobi3d-charm", 1024, "default").total
        t64 = self.pick(rows, "jacobi3d-charm", 65536, "default").total
        assert 2.0 < t64 / t1 < 5.0
        assert 0.3 < t1 < 1.2      # ~0.6 s in the paper
        assert 1.2 < t64 < 3.0     # ~2 s in the paper

    def test_growth_happens_between_1k_and_4k(self, rows):
        # "linear increase of the overheads from 1K to 4K cores and its
        # constancy beyond 4K cores" (the Z dimension saturates at 32).
        t1 = self.pick(rows, "jacobi3d-charm", 1024, "default").total
        t4 = self.pick(rows, "jacobi3d-charm", 4096, "default").total
        t64 = self.pick(rows, "jacobi3d-charm", 65536, "default").total
        assert t4 > 1.5 * t1
        assert t64 == pytest.approx(t4, rel=0.1)

    def test_optimized_mappings_constant(self, rows):
        for method in ("column", "mixed", "checksum"):
            t1 = self.pick(rows, "jacobi3d-charm", 1024, method).total
            t64 = self.pick(rows, "jacobi3d-charm", 65536, method).total
            assert t64 == pytest.approx(t1, rel=0.1), method

    def test_transfer_dominates_growth(self, rows):
        r1 = self.pick(rows, "jacobi3d-charm", 1024, "default")
        r64 = self.pick(rows, "jacobi3d-charm", 65536, "default")
        assert r64.transfer > r1.transfer * 2
        assert r64.local == pytest.approx(r1.local)
        assert r64.compare == pytest.approx(r1.compare)

    def test_checksum_compute_bound(self, rows):
        r = self.pick(rows, "jacobi3d-charm", 65536, "checksum")
        assert r.compare > r.transfer * 10

    def test_md_apps_small_absolute_times(self, rows):
        # Fig. 8c: LeanMD checkpoints in the 10-100 ms range.
        r = self.pick(rows, "leanmd", 65536, "default")
        assert r.total < 0.2

    def test_md_checksum_outperforms(self, rows):
        # §6.2: "the checksum method outperforms other schemes" for MD apps.
        totals = {m: self.pick(rows, "leanmd", 65536, m).total
                  for m in ("default", "column", "mixed", "checksum")}
        assert totals["checksum"] == min(totals.values())


class TestFig9Fig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_fig11_data(apps=("jacobi3d-charm", "leanmd"),
                               sockets_axis=(1024, 16384))

    def pick(self, rows, **kw):
        out = [r for r in rows if all(getattr(r, k) == v for k, v in kw.items())]
        assert out, kw
        return out

    def test_paper_optimal_intervals_at_16k(self, rows):
        # "The optimal checkpoint interval for Jacobi3d and LeanMD is 133s
        # and 24s on 16K cores with default mapping" (§6.2).
        jac = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=16384,
                        scheme="strong", variant="default")[0]
        lean = self.pick(rows, app="leanmd", sockets_per_replica=16384,
                         scheme="strong", variant="default")[0]
        assert jac.tau_opt == pytest.approx(133.0, rel=0.25)
        assert lean.tau_opt == pytest.approx(24.0, rel=0.45)

    def test_strong_overhead_highest(self, rows):
        # §6.2: strong checkpoints more often -> slightly higher overhead.
        for app in ("jacobi3d-charm", "leanmd"):
            sel = {r.scheme: r.checkpoint_overhead_pct
                   for r in self.pick(rows, app=app, sockets_per_replica=16384,
                                      variant="default")}
            assert sel["strong"] >= sel["medium"]
            assert sel["strong"] >= sel["weak"]

    def test_optimizations_halve_overhead(self, rows):
        # §6.2: "Use of either checksum or topology mapping optimization can
        # bring ... down the low checkpointing overhead ... by 50%."
        base = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=16384,
                         scheme="weak", variant="default")[0]
        col = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=16384,
                        scheme="weak", variant="column")[0]
        assert col.checkpoint_overhead_pct < 0.7 * base.checkpoint_overhead_pct

    def test_fig11_overall_under_3pct_jacobi(self, rows):
        # §6.3: "the overhead of strong resilience is less than 3% for
        # Jacobi3D and around 0.45% for LeanMD."
        jac = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=16384,
                        scheme="strong", variant="default")[0]
        lean = self.pick(rows, app="leanmd", sockets_per_replica=16384,
                         scheme="strong", variant="default")[0]
        assert jac.overall_overhead_pct < 3.0
        assert lean.overall_overhead_pct < 1.0

    def test_fig11_strong_worst_overall(self, rows):
        # §6.3: strong loses overall despite its fast restarts.
        sel = {r.scheme: r.overall_overhead_pct
               for r in self.pick(rows, app="jacobi3d-charm",
                                  sockets_per_replica=16384, variant="default")}
        assert sel["strong"] > sel["medium"]
        assert sel["strong"] > sel["weak"]

    def test_overhead_grows_with_scale(self, rows):
        small = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=1024,
                          scheme="strong", variant="default")[0]
        large = self.pick(rows, app="jacobi3d-charm", sockets_per_replica=16384,
                          scheme="strong", variant="default")[0]
        assert large.overall_overhead_pct > small.overall_overhead_pct


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_data(apps=("jacobi3d-charm", "leanmd"),
                          cores_axis=(1024, 65536))

    def pick(self, rows, app, cores, variant):
        for r in rows:
            if (r.app, r.cores_per_replica, r.variant) == (app, cores, variant):
                return r
        raise KeyError((app, cores, variant))

    def test_strong_least_restart_overhead(self, rows):
        for cores in (1024, 65536):
            strong = self.pick(rows, "jacobi3d-charm", cores, "strong").total
            medium = self.pick(rows, "jacobi3d-charm", cores,
                               "medium (default)").total
            assert strong < medium

    def test_paper_2s_to_041s_claim(self, rows):
        # §6.3: "bring down the recovery overhead from 2s to 0.41s in the
        # case of Jacobi3D for the medium resilience schemes."
        default = self.pick(rows, "jacobi3d-charm", 65536, "medium (default)").total
        column = self.pick(rows, "jacobi3d-charm", 65536, "medium (column)").total
        assert default == pytest.approx(2.0, rel=0.35)
        assert column == pytest.approx(0.41, rel=0.6)
        assert default / column > 3.0

    def test_leanmd_restart_sync_dominated(self, rows):
        r = self.pick(rows, "leanmd", 65536, "medium (column)")
        assert r.reconstruction > r.transfer


class TestFig12:
    def test_adaptive_interval_grows_with_decreasing_failure_rate(self):
        result = fig12_data(nodes_per_replica=4, horizon=600.0, failures=12,
                            seed=5, initial_interval=4.0)
        report = result.report
        assert report.hard_detected > 0
        assert report.checkpoints_completed > 5
        # The Fig. 12 signature: later checkpoint gaps longer than early ones.
        assert result.late_mean_interval > result.early_mean_interval
        assert "X" in result.ascii_timeline and "|" in result.ascii_timeline
