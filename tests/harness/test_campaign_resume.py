"""Resumable-campaign tests: cache hits, interrupted sweeps, bitwise identity."""

import numpy as np
import pytest

import repro.harness.campaign as campaign_mod
from repro.harness.campaign import run_campaign
from repro.harness.experiment import run_experiment_report
from repro.store import ResultStore

_KWARGS = dict(nodes_per_replica=2, total_iterations=60,
               checkpoint_interval=2.0, hard_mtbf=15.0, horizon=2000.0)
_SEEDS = list(range(4))


def _assert_reports_bitwise_equal(a_reports, b_reports):
    for a, b in zip(a_reports, b_reports):
        assert a.final_time == b.final_time
        assert a.iterations_completed == b.iterations_completed
        assert a.checkpoints_completed == b.checkpoints_completed
        assert a.recoveries == b.recoveries
        assert a.rework_iterations == b.rework_iterations
        assert set(a.digests) == set(b.digests)
        for rank in a.digests:
            assert np.array_equal(a.digests[rank], b.digests[rank])


class TestCacheHits:
    def test_second_run_does_zero_simulation_work(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        first = run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        assert first.cache_hits == 0
        assert first.cache_misses == len(_SEEDS)

        def explode(*args):
            raise AssertionError("a warm cache must not simulate")

        monkeypatch.setattr(campaign_mod, "run_experiment_report", explode)
        second = run_campaign("synthetic", seeds=_SEEDS, cache=store,
                              **_KWARGS)
        assert second.cache_hits == len(_SEEDS)
        assert second.cache_misses == 0
        assert second.summary == first.summary
        _assert_reports_bitwise_equal(first.reports, second.reports)

    def test_cached_summary_matches_uncached(self, tmp_path):
        baseline = run_campaign("synthetic", seeds=_SEEDS, **_KWARGS)
        run_campaign("synthetic", seeds=_SEEDS, cache_dir=str(tmp_path),
                     **_KWARGS)
        cached = run_campaign("synthetic", seeds=_SEEDS,
                              cache_dir=str(tmp_path), **_KWARGS)
        assert cached.cache_hits == len(_SEEDS)
        assert cached.summary == baseline.summary
        _assert_reports_bitwise_equal(baseline.reports, cached.reports)

    def test_resume_false_recomputes_but_still_writes(self, tmp_path,
                                                      monkeypatch):
        store = ResultStore(tmp_path)
        run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        calls = []

        def counting(app, seed, kwargs):
            calls.append(seed)
            return run_experiment_report(app, seed, kwargs)

        monkeypatch.setattr(campaign_mod, "run_experiment_report", counting)
        result = run_campaign("synthetic", seeds=_SEEDS, cache=store,
                              resume=False, **_KWARGS)
        assert calls == _SEEDS
        assert result.cache_hits == 0

    def test_config_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        changed = dict(_KWARGS, checkpoint_interval=3.0)
        result = run_campaign("synthetic", seeds=_SEEDS, cache=store,
                              **changed)
        assert result.cache_hits == 0
        assert result.cache_misses == len(_SEEDS)


class TestInterruptedSweep:
    def test_resume_is_bitwise_identical_to_uninterrupted(self, tmp_path,
                                                          monkeypatch):
        baseline = run_campaign("synthetic", seeds=_SEEDS, **_KWARGS)
        store = ResultStore(tmp_path)

        def die_after_two(app, seed, kwargs):
            if seed >= 2:
                raise KeyboardInterrupt  # the operator's ^C mid-sweep
            return run_experiment_report(app, seed, kwargs)

        monkeypatch.setattr(campaign_mod, "run_experiment_report",
                            die_after_two)
        with pytest.raises(KeyboardInterrupt):
            run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        # The first two shards landed before the interrupt and survive it.
        assert sorted(e.seed for e in store.entries()) == [0, 1]

        monkeypatch.setattr(campaign_mod, "run_experiment_report",
                            run_experiment_report)
        resumed = run_campaign("synthetic", seeds=_SEEDS, cache=store,
                               **_KWARGS)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 2
        assert resumed.summary == baseline.summary
        assert resumed.seeds == baseline.seeds
        _assert_reports_bitwise_equal(baseline.reports, resumed.reports)

    def test_resumed_then_rerun_is_all_hits(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)

        def die_on_last(app, seed, kwargs):
            if seed == _SEEDS[-1]:
                raise RuntimeError("node evicted")
            return run_experiment_report(app, seed, kwargs)

        monkeypatch.setattr(campaign_mod, "run_experiment_report",
                            die_on_last)
        with pytest.raises(RuntimeError):
            run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        monkeypatch.setattr(campaign_mod, "run_experiment_report",
                            run_experiment_report)
        run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        final = run_campaign("synthetic", seeds=_SEEDS, cache=store, **_KWARGS)
        assert final.cache_hits == len(_SEEDS)
        assert final.cache_misses == 0


class TestParallelWithCache:
    def test_parallel_cache_matches_serial(self, tmp_path):
        serial = run_campaign("synthetic", seeds=_SEEDS,
                              cache=ResultStore(tmp_path / "serial"),
                              **_KWARGS)
        parallel = run_campaign("synthetic", seeds=_SEEDS, workers=2,
                                cache=ResultStore(tmp_path / "parallel"),
                                **_KWARGS)
        assert parallel.summary == serial.summary
        _assert_reports_bitwise_equal(serial.reports, parallel.reports)

    def test_parallel_persists_cells_for_reuse(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_campaign("synthetic", seeds=_SEEDS, workers=2,
                             cache=store, **_KWARGS)
        assert first.cache_misses == len(_SEEDS)
        second = run_campaign("synthetic", seeds=_SEEDS, workers=2,
                              cache=store, **_KWARGS)
        assert second.cache_hits == len(_SEEDS)
        assert second.summary == first.summary
