"""Campaign (multi-seed) runner tests."""

import pytest

from repro.core.framework import RunReport
from repro.harness.campaign import run_campaign, summarize


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.runs == 0
        assert s.completion_rate == 0.0

    def test_aggregation(self):
        a = RunReport(final_time=10.0, completed=True, result_correct=True,
                      checkpoint_time=1.0, checkpoints_completed=3,
                      hard_detected=1, recoveries={"strong": 1})
        b = RunReport(final_time=20.0, completed=True, result_correct=False,
                      checkpoint_time=4.0, checkpoints_completed=5,
                      sdc_detected=2, recoveries={"sdc": 2})
        c = RunReport(final_time=5.0, completed=False,
                      aborted_reason="spare node pool exhausted")
        s = summarize([a, b, c])
        assert s.runs == 3
        assert s.completed_runs == 2
        assert s.correct_runs == 1
        assert s.aborted_runs == 1
        assert s.completion_rate == pytest.approx(2 / 3)
        assert s.correctness_rate == pytest.approx(0.5)
        assert s.total_recoveries == {"strong": 1, "sdc": 2}
        assert s.total_hard_faults == 1
        assert s.total_sdc == 2
        assert s.mean_overhead == pytest.approx((0.1 + 0.2) / 2)


class TestRunCampaign:
    def test_failure_free_campaign_all_correct(self):
        result = run_campaign("synthetic", seeds=range(3),
                              nodes_per_replica=2, total_iterations=60,
                              checkpoint_interval=2.0)
        assert result.summary.runs == 3
        assert result.summary.completion_rate == 1.0
        assert result.summary.correctness_rate == 1.0

    def test_seeds_produce_different_fault_draws(self):
        result = run_campaign("synthetic", seeds=range(4),
                              nodes_per_replica=2, total_iterations=120,
                              checkpoint_interval=2.0, hard_mtbf=10.0,
                              horizon=2000.0)
        counts = {r.hard_injected for r in result.reports}
        # Independent Poisson draws across seeds: not all identical.
        assert len(counts) > 1

    def test_strong_scheme_campaign_survives_faults_correctly(self):
        result = run_campaign("jacobi3d-charm", seeds=range(4),
                              nodes_per_replica=4, scheme="strong",
                              total_iterations=200, checkpoint_interval=3.0,
                              hard_mtbf=12.0, sdc_mtbf=20.0, horizon=4000.0,
                              spare_nodes=64)
        assert result.summary.completion_rate == 1.0
        assert result.summary.correctness_rate == 1.0
        assert result.summary.total_hard_faults + result.summary.total_sdc > 0
