"""Metrics registry unit tests."""

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    snapshot_percentile,
)


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("a.b", {}) == "a.b"

    def test_labels_sorted(self):
        assert metric_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"


class TestNullMetrics:
    def test_noop_instruments(self):
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="app").inc(3)
        reg.counter("c", kind="app").inc(2)
        assert reg.snapshot()["counters"]["c{kind=app}"] == 5

    def test_counter_set_total_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.set_total(10)
        c.set_total(7)  # lower reconciliation ignored
        assert c.value == 10

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2.5)
        assert reg.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_percentiles(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(3.5)
        assert h.percentile(50) == 1.0   # bucket-upper estimate
        assert h.percentile(100) == 10.0
        assert Histogram().percentile(99) == 0.0

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.01)
        json.loads(reg.to_json(app="jacobi3d-charm"))


class TestMerge:
    def test_counters_add_gauges_last_writer(self):
        a = {"counters": {"c": 2}, "gauges": {"g": 5.0}, "histograms": {}}
        b = {"counters": {"c": 3}, "gauges": {"g": 4.0}, "histograms": {}}
        merged = merge_snapshots([a, b])
        assert merged["counters"]["c"] == 5
        # Conflicting gauges: last-writer-by-worker-index — the later
        # snapshot in the list wins (the documented, deterministic contract).
        assert merged["gauges"]["g"] == 4.0
        assert merge_snapshots([b, a])["gauges"]["g"] == 5.0

    def test_gauge_absent_from_later_snapshot_survives(self):
        a = {"counters": {}, "gauges": {"only_a": 7.0}, "histograms": {}}
        b = {"counters": {}, "gauges": {"only_b": 1.0}, "histograms": {}}
        merged = merge_snapshots([a, b])
        assert merged["gauges"] == {"only_a": 7.0, "only_b": 1.0}

    def test_counter_and_histogram_merge_is_order_independent(self):
        """Counters/histograms must aggregate identically however the
        per-worker snapshots are ordered or grouped (associativity) —
        gauges are the *only* order-dependent kind, by contract."""
        regs = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.counter("c").inc(i + 1)
            reg.counter("only", worker=str(i)).inc(10)
            reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5 * (i + 1))
            regs.append(reg.snapshot())

        def strip_gauges(snap):
            return {"counters": snap["counters"],
                    "histograms": snap["histograms"]}

        flat = merge_snapshots(regs)
        reordered = merge_snapshots([regs[2], regs[0], regs[1]])
        # Associativity: merging a pre-merged pair with the third snapshot
        # equals the flat three-way merge.
        nested = merge_snapshots([merge_snapshots(regs[:2]), regs[2]])
        assert strip_gauges(flat) == strip_gauges(reordered)
        assert strip_gauges(flat) == strip_gauges(nested)
        assert flat["counters"]["c"] == 6
        assert flat["histograms"]["h"]["count"] == 3

    def test_histograms_merge_bucketwise(self):
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        reg2.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        merged = merge_snapshots([reg1.snapshot(), reg2.snapshot()])
        h = merged["histograms"]["h"]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 1.5
        assert snapshot_percentile(h, 100) == 1.5

    def test_empty_prior_histogram_does_not_poison_min(self):
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.histogram("h")  # registered, never observed
        reg2.histogram("h").observe(3.0)
        merged = merge_snapshots([reg1.snapshot(), reg2.snapshot()])
        assert merged["histograms"]["h"]["min"] == 3.0

    def test_incompatible_buckets_rejected(self):
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.histogram("h", buckets=(1.0,)).observe(0.5)
        reg2.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([reg1.snapshot(), reg2.snapshot()])

    def test_empty_input(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {}}
