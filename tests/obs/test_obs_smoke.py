"""End-to-end telemetry smoke tests.

Two guarantees worth guarding forever: telemetry off means *nothing* extra
happens (no subscribers, no spans, identical execution), and telemetry on
produces a valid, Perfetto-loadable Chrome trace covering every protocol
phase.
"""

import json

import pytest

from repro.cli import main
from repro.harness.experiment import run_acr_experiment
from repro.obs import (
    CHROME_EVENT_REQUIRED_KEYS,
    CHROME_TRACE_REQUIRED_KEYS,
    MetricsRegistry,
    SpanTracer,
    validate_chrome_trace,
)


def _run(**kwargs):
    kwargs.setdefault("seed", 1)
    return run_acr_experiment(
        "jacobi3d-charm", nodes_per_replica=2, total_iterations=60,
        checkpoint_interval=2.0, **kwargs)


class TestDisabledPath:
    def test_no_timeline_subscribers_and_no_spans(self):
        result = _run()
        acr = result.acr
        assert acr.timeline._subscribers == []
        assert not acr.tracer.enabled
        assert not acr.metrics.enabled
        assert result.report.metrics_snapshot is None

    def test_enabled_run_is_bit_identical(self):
        plain = _run()
        traced = _run(tracer=SpanTracer(), metrics=MetricsRegistry())
        assert traced.report.final_time == plain.report.final_time
        assert traced.acr.sim.events_processed == plain.acr.sim.events_processed
        for replica in (0, 1):
            assert (traced.report.digests[replica]
                    == plain.report.digests[replica]).all()


class TestEnabledPath:
    def test_spans_cover_protocol_phases(self):
        tracer = SpanTracer()
        result = _run(tracer=tracer, hard_mtbf=20.0, horizon=300.0,
                      scheme="strong")
        assert result.report.completed
        names = tracer.phase_names()
        assert len(names) >= 6
        for expected in ("checkpoint", "checkpoint.pack",
                         "checkpoint.transfer", "checkpoint.compare",
                         "consensus.round", "consensus.reduce_max"):
            assert expected in names, f"missing span {expected!r}"
        assert tracer.open_spans == 0  # _finalize closed everything

    def test_metrics_snapshot_attached(self):
        result = _run(metrics=MetricsRegistry())
        snap = result.report.metrics_snapshot
        assert snap is not None
        assert snap["counters"]["store.commits"] >= 2
        assert snap["counters"]["sim.events_processed"] > 0
        assert "acr.checkpoint_time_s" in snap["gauges"]

    def test_snapshot_reports_batching_effectiveness(self):
        """Heap high-water + cohort-size histogram reach ``repro report``."""
        result = _run(metrics=MetricsRegistry())
        snap = result.report.metrics_snapshot
        sim = result.acr.sim
        assert snap["gauges"]["sim.max_queue_depth"] == sim.max_queue_depth
        assert snap["gauges"]["sim.max_cohort_events"] == sim.max_cohort_events
        assert (snap["counters"]["sim.cohorts_dispatched"]
                == sim.cohorts_dispatched > 0)
        buckets = {k: v for k, v in snap["counters"].items()
                   if k.startswith("sim.cohort_size{")}
        assert buckets, "cohort-size histogram missing from snapshot"
        assert sum(buckets.values()) == sim.cohorts_dispatched


class TestCliTraceOut:
    def test_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        code = main(["run", "--app", "jacobi3d-charm", "--nodes", "2",
                     "--iterations", "60", "--interval", "2", "--seed", "1",
                     "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert code == 0
        with open(trace_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        for key in CHROME_TRACE_REQUIRED_KEYS:
            assert key in payload
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        for key in CHROME_EVENT_REQUIRED_KEYS:
            assert key in events[0]
        phase_types = {e["name"] for e in events if e["ph"] == "X"}
        assert len(phase_types) >= 6

    def test_metrics_out_and_report(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = main(["run", "--app", "jacobi3d-charm", "--nodes", "2",
                     "--iterations", "60", "--interval", "2", "--seed", "1",
                     "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert code == 0
        code = main(["report", "--metrics", str(metrics_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol time by phase" in out
        assert "drift" in out
        # The printed drift between the phase sum and checkpoint+recovery
        # must be within the 1% acceptance band.
        drift_pct = float(out.split("drift ")[1].split("%")[0])
        assert drift_pct <= 1.0

    def test_report_without_inputs_errors(self, capsys):
        assert main(["report"]) == 2


class TestReportPhaseSum:
    @pytest.mark.parametrize("scheme", ["strong", "medium", "weak"])
    def test_phase_sum_matches_totals_under_faults(self, scheme):
        result = _run(scheme=scheme, hard_mtbf=15.0, sdc_mtbf=25.0,
                      horizon=600.0, seed=4)
        r = result.report
        budget = r.checkpoint_time + r.recovery_time
        assert r.phase_time_sum == pytest.approx(budget, rel=1e-9, abs=1e-12)
