"""TimeSeriesRecorder unit tests: sampling, derivation, merge, export."""

import json

import pytest

from repro.obs.series import (
    DEFAULT_SERIES_INTERVAL,
    NULL_SERIES,
    SERIES_FORMAT,
    TimeSeriesRecorder,
    merge_series,
    write_series,
)


def _snap(counters=None, gauges=None):
    return {"counters": counters or {}, "gauges": gauges or {},
            "histograms": {}}


class TestNullSeries:
    def test_disabled_and_inert(self):
        assert NULL_SERIES.enabled is False
        NULL_SERIES.sample(1.0, _snap({"c": 1}))
        assert NULL_SERIES.to_dict()["times"] == []


class TestSampling:
    def test_columnar_append(self):
        rec = TimeSeriesRecorder(interval=2.0)
        rec.sample(2.0, _snap({"c": 1}, {"g": 5.0}))
        rec.sample(4.0, _snap({"c": 3}, {"g": 2.0}))
        assert len(rec) == 2
        assert rec.times == [2.0, 4.0]
        assert rec.column("c") == [1.0, 3.0]
        assert rec.column("g") == [5.0, 2.0]
        assert rec.keys() == ["c", "g"]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval=0.0)

    def test_late_counter_zero_padded_late_gauge_value_padded(self):
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"c": 1}))
        rec.sample(2.0, _snap({"c": 2, "new": 7}, {"g": 3.0}))
        assert rec.column("new") == [0.0, 7.0]
        # A gauge that did not exist yet has no meaningful zero.
        assert rec.column("g") == [3.0, 3.0]

    def test_absent_key_carries_forward(self):
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"c": 4}))
        rec.sample(2.0, _snap({"other": 1}))
        assert rec.column("c") == [4.0, 4.0]

    def test_duplicate_time_collapses_onto_last_row(self):
        """The final end-of-run sample often coincides with the last
        periodic tick; it must overwrite, not duplicate."""
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"c": 1}))
        rec.sample(2.0, _snap({"c": 2}))
        rec.sample(2.0, _snap({"c": 5}, {"g": 1.0}))
        assert rec.times == [1.0, 2.0]
        assert rec.column("c") == [1.0, 5.0]
        assert rec.column("g") == [1.0, 1.0]


class TestDerivation:
    def test_deltas_and_rates(self):
        rec = TimeSeriesRecorder()
        rec.sample(0.0, _snap({"c": 0}))
        rec.sample(2.0, _snap({"c": 6}))
        rec.sample(6.0, _snap({"c": 10}))
        assert rec.deltas("c") == [6.0, 4.0]
        assert rec.rates("c") == [3.0, 1.0]


class TestSerialization:
    def test_round_trip(self):
        rec = TimeSeriesRecorder(interval=3.0)
        rec.sample(3.0, _snap({"c": 1}, {"g": 2.0}))
        rec.sample(6.0, _snap({"c": 4}, {"g": 1.0}))
        payload = rec.to_dict()
        assert payload["format"] == SERIES_FORMAT
        back = TimeSeriesRecorder.from_dict(json.loads(json.dumps(payload)))
        assert back.to_dict() == payload

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder.from_dict({"format": "bogus/9"})

    def test_jsonl_rows(self):
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"c": 2}))
        rec.sample(2.0, _snap({"c": 3}))
        rows = [json.loads(line) for line in rec.to_jsonl().splitlines()]
        assert rows == [{"t": 1.0, "c": 2.0}, {"t": 2.0, "c": 3.0}]

    def test_openmetrics_last_sample(self):
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"transport.messages_sent{kind=hb}": 2},
                              {"sim.queue-depth": 7.0}))
        rec.sample(5.0, _snap({"transport.messages_sent{kind=hb}": 9},
                              {"sim.queue-depth": 3.0}))
        text = rec.to_openmetrics()
        assert "# TYPE transport_messages_sent_total counter" in text
        assert 'transport_messages_sent_total{kind="hb"} 9 5' in text
        assert "# TYPE sim_queue_depth gauge" in text
        assert "sim_queue_depth 3 5" in text
        assert text.endswith("# EOF\n")

    def test_openmetrics_empty(self):
        assert TimeSeriesRecorder().to_openmetrics() == "# EOF\n"

    def test_write_series_formats(self, tmp_path):
        rec = TimeSeriesRecorder()
        rec.sample(1.0, _snap({"c": 1}))
        payload = rec.to_dict()
        j = tmp_path / "s.json"
        write_series(j, payload, fmt="json")
        assert json.loads(j.read_text()) == payload
        jl = tmp_path / "s.jsonl"
        write_series(jl, payload, fmt="jsonl")
        assert json.loads(jl.read_text().splitlines()[0])["c"] == 1.0
        om = tmp_path / "s.prom"
        write_series(om, payload, fmt="openmetrics")
        assert om.read_text().endswith("# EOF\n")
        with pytest.raises(ValueError):
            write_series(tmp_path / "s.x", payload, fmt="csv")


class TestMergeSeries:
    def test_empty(self):
        merged = merge_series([None, {}])
        assert merged["times"] == []

    def test_counters_add_on_union_grid(self):
        a = TimeSeriesRecorder()
        a.sample(1.0, _snap({"c": 1}))
        a.sample(3.0, _snap({"c": 3}))
        b = TimeSeriesRecorder()
        b.sample(2.0, _snap({"c": 10}))
        merged = merge_series([a.to_dict(), b.to_dict()])
        assert merged["times"] == [1.0, 2.0, 3.0]
        # a forward-fills 1->1->3; b fills 0 (not yet sampled), 10, 10.
        assert merged["counters"]["c"] == [1.0, 11.0, 13.0]

    def test_gauges_last_writer_where_observed(self):
        a = TimeSeriesRecorder()
        a.sample(1.0, _snap(gauges={"g": 5.0}))
        a.sample(3.0, _snap(gauges={"g": 6.0}))
        b = TimeSeriesRecorder()
        b.sample(3.0, _snap(gauges={"g": 1.0}))
        merged = merge_series([a.to_dict(), b.to_dict()])
        # Before b's first sample the earlier worker's value survives;
        # afterwards the later input wins (last-writer-by-worker-index).
        assert merged["gauges"]["g"] == [5.0, 1.0]

    def test_merge_keeps_max_interval(self):
        a = TimeSeriesRecorder(interval=2.0)
        a.sample(2.0, _snap({"c": 1}))
        b = TimeSeriesRecorder(interval=5.0)
        b.sample(5.0, _snap({"c": 1}))
        assert merge_series([a.to_dict(), b.to_dict()])["interval"] == 5.0


class TestFrameworkIntegration:
    def test_sampled_run_lands_series_on_report(self):
        from repro.harness.experiment import run_acr_experiment

        series = TimeSeriesRecorder(interval=1.0)
        res = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=30,
            checkpoint_interval=2.0, hard_mtbf=20.0, seed=1, series=series)
        rep = res.report
        assert rep.series is not None
        assert rep.series["format"] == SERIES_FORMAT
        assert len(rep.series["times"]) == len(series) > 1
        # The final sample is taken at end of run, so the last column value
        # agrees with the end-of-run aggregate snapshot.
        counters = rep.series["counters"]
        assert (counters["sim.events_processed"][-1]
                == rep.metrics_snapshot["counters"]["sim.events_processed"])
        # Sampling implies metrics even when the caller passed none.
        assert res.acr.metrics.enabled

    def test_sampled_run_is_deterministic(self):
        from repro.harness.experiment import run_acr_experiment

        def go():
            return run_acr_experiment(
                "jacobi3d-charm", nodes_per_replica=2, total_iterations=30,
                checkpoint_interval=2.0, hard_mtbf=20.0, seed=1,
                series=TimeSeriesRecorder(interval=1.0))

        assert go().report.series == go().report.series

    def test_campaign_merges_cell_series(self):
        from repro.harness.campaign import run_campaign

        result = run_campaign(
            "jacobi3d-charm", seeds=range(2), nodes_per_replica=2,
            total_iterations=20, checkpoint_interval=2.0,
            collect_series=2.0)
        merged = result.summary.series
        assert merged is not None
        assert merged["times"]
        # Two cells' event counters added on the union grid: the merged
        # final value is the sum of the per-report finals.
        total = sum(r.series["counters"]["sim.events_processed"][-1]
                    for r in result.reports)
        assert merged["counters"]["sim.events_processed"][-1] == total

    def test_unsampled_campaign_has_no_series(self):
        from repro.harness.campaign import run_campaign

        result = run_campaign(
            "jacobi3d-charm", seeds=range(1), nodes_per_replica=2,
            total_iterations=10, checkpoint_interval=2.0)
        assert result.summary.series is None
        assert DEFAULT_SERIES_INTERVAL > 0
