"""Span tracer unit tests."""

import json

from repro.obs.tracer import NULL_TRACER, SpanTracer


class TestNullTracer:
    def test_all_methods_are_noops(self):
        sid = NULL_TRACER.begin("x", 0.0)
        assert sid is None
        NULL_TRACER.end(sid, 1.0)
        NULL_TRACER.emit("y", 0.0, 1.0)
        NULL_TRACER.instant("z", 0.5)
        assert NULL_TRACER.enabled is False


class TestSpanTracer:
    def test_begin_end_records_duration(self):
        tr = SpanTracer()
        sid = tr.begin("checkpoint", 1.0, iteration=10)
        tr.end(sid, 3.5)
        (span,) = tr.spans
        assert span.name == "checkpoint"
        assert span.duration == 2.5
        assert span.attrs["iteration"] == 10

    def test_nesting_via_parent(self):
        tr = SpanTracer()
        outer = tr.begin("checkpoint", 0.0)
        inner = tr.emit("checkpoint.pack", 0.0, 1.0, parent=outer)
        tr.end(outer, 2.0)
        assert tr.children_of(outer)[0].span_id == inner

    def test_end_tolerates_none_and_double_close(self):
        tr = SpanTracer()
        tr.end(None, 1.0)
        sid = tr.begin("x", 0.0)
        tr.end(sid, 1.0)
        tr.end(sid, 2.0)  # second close ignored
        assert tr.spans[0].end == 1.0

    def test_end_clamps_to_start(self):
        tr = SpanTracer()
        sid = tr.begin("x", 5.0)
        tr.end(sid, 4.0)
        assert tr.spans[0].end == 5.0

    def test_end_open_closes_everything(self):
        tr = SpanTracer()
        tr.begin("a", 0.0)
        tr.begin("b", 1.0)
        assert tr.open_spans == 2
        tr.end_open(2.0)
        assert tr.open_spans == 0
        assert all(s.end == 2.0 for s in tr.spans)

    def test_phase_totals_and_names(self):
        tr = SpanTracer()
        tr.emit("a", 0.0, 1.0)
        tr.emit("a", 2.0, 4.0)
        tr.emit("b", 0.0, 0.5)
        assert tr.phase_names() == {"a", "b"}
        totals = tr.phase_totals()
        assert totals["a"] == 3.0 and totals["b"] == 0.5

    def test_chrome_trace_schema(self):
        tr = SpanTracer()
        sid = tr.begin("checkpoint", 1.0, track=1)
        tr.end(sid, 2.0)
        tr.instant("timeline.job_end", 2.0)
        payload = tr.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        span_ev, inst_ev = payload["traceEvents"]
        assert span_ev["ph"] == "X"
        assert span_ev["ts"] == 1.0e6 and span_ev["dur"] == 1.0e6
        assert span_ev["tid"] == 1
        assert inst_ev["ph"] == "i" and inst_ev["s"] == "g"
        # The whole payload must survive a JSON round trip.
        assert json.loads(json.dumps(payload)) == payload

    def test_jsonl_round_trip(self):
        tr = SpanTracer()
        tr.emit("a", 0.0, 1.0, iteration=3)
        tr.instant("b", 0.5)
        lines = [json.loads(line) for line in tr.to_jsonl().splitlines()]
        assert lines[0]["type"] == "span" and lines[0]["name"] == "a"
        assert lines[1]["type"] == "instant" and lines[1]["t"] == 0.5
