"""CLI surface of the streaming-telemetry layer.

``repro run --series-out``, ``repro report --series/--format json``,
``repro campaign --progress-file``, and ``repro chaos --replay`` on a
flight-recorder artifact.
"""

import dataclasses
import json

from repro.cli import main
from repro.obs.series import SERIES_FORMAT


def _run_with_series(tmp_path, fmt=None, extra=()):
    series_path = tmp_path / {"json": "s.json", "jsonl": "s.jsonl",
                              "openmetrics": "s.prom"}.get(fmt or "json")
    argv = ["run", "--app", "jacobi3d-charm", "--nodes", "2",
            "--iterations", "60", "--interval", "2", "--seed", "1",
            "--series-out", str(series_path), "--series-interval", "1"]
    if fmt:
        argv += ["--series-format", fmt]
    argv += list(extra)
    return main(argv), series_path


class TestRunSeriesOut:
    def test_json_series_file(self, tmp_path, capsys):
        code, path = _run_with_series(tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "series written to" in out
        payload = json.loads(path.read_text())
        assert payload["format"] == SERIES_FORMAT
        assert len(payload["times"]) > 2
        assert "sim.events_processed" in payload["counters"]

    def test_jsonl_series_file(self, tmp_path, capsys):
        code, path = _run_with_series(tmp_path, fmt="jsonl")
        capsys.readouterr()
        assert code == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) > 2
        assert all("t" in row for row in rows)

    def test_openmetrics_series_file(self, tmp_path, capsys):
        code, path = _run_with_series(tmp_path, fmt="openmetrics")
        capsys.readouterr()
        assert code == 0
        text = path.read_text()
        assert "# TYPE sim_events_processed_total counter" in text
        assert text.endswith("# EOF\n")

    def test_series_interval_requires_series_out(self, capsys):
        code = main(["run", "--nodes", "2", "--iterations", "10",
                     "--series-interval", "1"])
        capsys.readouterr()
        assert code == 2


class TestReportSeries:
    def test_sparkline_trend_table(self, tmp_path, capsys):
        _, path = _run_with_series(tmp_path)
        capsys.readouterr()
        code = main(["report", "--series", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "time-series trends" in out
        assert "sim.events_processed" in out

    def test_format_json_document(self, tmp_path, capsys):
        _, path = _run_with_series(tmp_path)
        capsys.readouterr()
        code = main(["report", "--series", str(path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        trends = doc["series"]
        assert trends["samples"] > 2
        ev = trends["counters"]["sim.events_processed"]
        assert ev["last"] >= ev["first"]
        assert ev["delta"] == ev["last"] - ev["first"]

    def test_format_json_with_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = main(["run", "--nodes", "2", "--iterations", "40",
                     "--interval", "2", "--seed", "1",
                     "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert code == 0
        code = main(["report", "--metrics", str(metrics_path),
                     "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert "counters" in doc["metrics"]


class TestCampaignProgressCli:
    def test_progress_file_written_and_resumed_sweep_reports_hits(
            self, tmp_path, capsys):
        progress_path = tmp_path / "progress.json"
        argv = ["campaign", "--seeds", "2", "--nodes", "2",
                "--iterations", "10", "--cache-dir",
                str(tmp_path / "cache"),
                "--progress-file", str(progress_path)]
        assert main(argv) == 0
        capsys.readouterr()
        event = json.loads(progress_path.read_text())
        assert event["done"] is True
        assert event["completed"] == 2
        # Resumed: same sweep now comes entirely from the store.
        assert main(argv) == 0
        capsys.readouterr()
        event = json.loads(progress_path.read_text())
        assert event["cached"] == 2
        assert event["cache_hit_rate"] == 1.0


class TestChaosFlightReplayCli:
    def test_replay_flight_artifact_reproduces_verdict(
            self, tmp_path, capsys):
        from repro.chaos.fuzzer import fuzz_schedule
        from repro.chaos.runner import run_schedule

        schedule = dataclasses.replace(fuzz_schedule(7), horizon=0.5)
        outcome = run_schedule(schedule, flight_dir=str(tmp_path))
        assert outcome.flight_path
        code = main(["chaos", "--replay", outcome.flight_path])
        out = capsys.readouterr().out
        assert code == 1
        assert "replaying embedded schedule" in out
        assert "FAIL [liveness]" in out
        assert outcome.fingerprint[:16] in out

    def test_replay_plain_plan_still_works(self, tmp_path, capsys):
        from repro.chaos.fuzzer import fuzz_schedule

        plan = tmp_path / "plan.json"
        plan.write_text(fuzz_schedule(0).to_json())
        code = main(["chaos", "--replay", str(plan)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict" in out
