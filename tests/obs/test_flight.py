"""FlightRecorder unit + trigger tests.

The ring-buffer mechanics are covered directly; the trigger path runs a real
chaos schedule whose horizon is too short to finish, which fires the
``liveness`` invariant on final check — a deterministic failure whose flight
dump must point at the violating event window and replay to the same
verdict.
"""

import dataclasses
import json

import pytest

from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_FORMAT,
    FlightRecorder,
    is_flight_artifact,
    load_flight,
)


class TestRing:
    def test_eviction_order_keeps_most_recent(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(float(i), "tick", {"i": i})
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.evicted == 6
        assert [e["detail"]["i"] for e in rec.events()] == [6, 7, 8, 9]
        assert [e["t"] for e in rec.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY

    def test_dump_dict_shape(self):
        rec = FlightRecorder(capacity=2)
        rec.record(1.0, "a")
        payload = rec.dump_dict(reason="unit", invariant="inv",
                                violation="v", schedule={"seed": 1},
                                context={"k": 2})
        assert payload["format"] == FLIGHT_FORMAT
        assert payload["reason"] == "unit"
        assert payload["schedule"] == {"seed": 1}
        assert payload["events"] == [
            {"t": 1.0, "kind": "a", "detail": {}}]
        assert is_flight_artifact(payload)

    def test_dump_and_load_round_trip(self, tmp_path):
        rec = FlightRecorder()
        rec.record(0.5, "x", {"n": 1})
        path = rec.dump(tmp_path / "sub" / "flight.json", reason="unit")
        loaded = load_flight(path)
        assert loaded["events"] == rec.events()

    def test_load_rejects_non_artifact(self, tmp_path):
        p = tmp_path / "not-flight.json"
        p.write_text(json.dumps({"format": "other/1"}))
        with pytest.raises(ValueError):
            load_flight(p)


def _failing_schedule(seed: int = 7):
    """A schedule that cannot complete by its horizon: deterministic
    ``liveness`` violation on the monitor's final check."""
    from repro.chaos.fuzzer import fuzz_schedule

    return dataclasses.replace(fuzz_schedule(seed), horizon=0.5)


class TestTrigger:
    def test_invariant_violation_dumps_pointing_at_event_window(
            self, tmp_path):
        from repro.chaos.runner import run_schedule

        schedule = _failing_schedule()
        outcome = run_schedule(schedule, flight_dir=str(tmp_path))
        assert not outcome.ok
        assert outcome.invariant == "liveness"
        assert outcome.flight_path is not None
        payload = load_flight(outcome.flight_path)
        assert payload["reason"] == "invariant_violation"
        assert payload["invariant"] == "liveness"
        assert payload["violation"] == outcome.violation
        assert payload["context"]["seed"] == schedule.seed
        assert payload["context"]["fingerprint"] == outcome.fingerprint
        # The tail of the dump is the tail of the run's actual timeline.
        rerun = run_schedule(schedule)  # no flight: identical execution
        assert rerun.fingerprint == outcome.fingerprint
        assert payload["events"], "flight dump recorded no events"

    def test_tail_events_match_run_timeline(self, tmp_path):
        """Dump events (timeline kinds only) equal the timeline's tail —
        the recorder saw exactly what the run recorded, in order."""
        from repro.chaos.fuzzer import fuzz_schedule
        from repro.core.framework import ACR

        schedule = _failing_schedule()
        rec = FlightRecorder(capacity=8)
        acr = ACR(schedule.app,
                  nodes_per_replica=schedule.nodes_per_replica,
                  config=schedule.config(),
                  injection_plan=schedule.plan())
        rec.attach(acr)
        acr.run(until=schedule.horizon)
        rec.detach()
        timeline_tail = [
            {"t": e.time, "kind": str(e.kind), "detail": dict(e.detail)}
            for e in acr.timeline.events]
        recorded = [e for e in rec.events() if e["kind"] != "phase_change"]
        assert recorded == timeline_tail[-len(recorded):]
        assert fuzz_schedule(schedule.seed).seed == schedule.seed

    def test_passing_run_dumps_nothing(self, tmp_path):
        from repro.chaos.fuzzer import fuzz_schedule
        from repro.chaos.runner import run_schedule

        outcome = run_schedule(fuzz_schedule(0), flight_dir=str(tmp_path))
        assert outcome.ok
        assert outcome.flight_path is None
        assert not list(tmp_path.iterdir())

    def test_detach_stops_recording(self):
        from repro.chaos.fuzzer import fuzz_schedule
        from repro.core.framework import ACR

        schedule = _failing_schedule()
        rec = FlightRecorder()
        acr = ACR(schedule.app,
                  nodes_per_replica=schedule.nodes_per_replica,
                  config=schedule.config(),
                  injection_plan=schedule.plan())
        rec.attach(acr)
        rec.detach()
        acr.run(until=schedule.horizon)
        assert rec.recorded == 0
        assert rec._acr is None
        assert fuzz_schedule is not None


class TestQuarantineWiring:
    def test_chaos_campaign_dumps_into_store_quarantine(self, tmp_path):
        """With a store and no explicit flight_dir, dumps land in
        ``quarantine/`` and ``verify`` does not flag them."""
        from repro.chaos.campaign import run_chaos_campaign
        from repro.chaos.runner import run_schedule
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        # Plant a failing artifact exactly the way run_schedule does.
        schedule = _failing_schedule()
        outcome = run_schedule(schedule,
                               flight_dir=str(store.quarantine_dir))
        assert outcome.flight_path is not None
        assert outcome.flight_path.startswith(str(store.quarantine_dir))
        assert store.verify() == []
        # A green campaign over the same store also stays clean.
        result = run_chaos_campaign(1, cache=store, shrink=False)
        assert result.ok
        assert store.verify() == []

    def test_flight_path_serializes_through_store(self, tmp_path):
        from repro.chaos.runner import run_schedule
        from repro.store.serialization import (
            outcome_from_dict,
            outcome_to_dict,
        )

        outcome = run_schedule(_failing_schedule(),
                               flight_dir=str(tmp_path))
        back = outcome_from_dict(outcome_to_dict(outcome))
        assert back.flight_path == outcome.flight_path
        # Old payloads without the field still decode (dataclass default).
        old = outcome_to_dict(outcome)
        old.pop("flight_path")
        assert outcome_from_dict(old).flight_path is None
