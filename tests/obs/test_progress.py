"""ProgressTracker unit tests: counts, rates, ETA, sinks, rendering."""

import json

from repro.obs.progress import (
    PROGRESS_FORMAT,
    ProgressTracker,
    render_progress_line,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCounts:
    def test_tick_accounting(self):
        p = ProgressTracker(10)
        p.cell_completed()
        p.cell_cached(3)
        p.cell_failed()
        assert p.processed == 5
        assert p.remaining == 5
        snap = p.snapshot()
        assert snap["format"] == PROGRESS_FORMAT
        assert snap["completed"] == 1
        assert snap["cached"] == 3
        assert snap["failed"] == 1
        assert snap["done"] is False

    def test_finish_marks_done(self):
        p = ProgressTracker(1)
        p.cell_completed()
        p.finish()
        assert p.snapshot()["done"] is True


class TestRatesAndEta:
    def test_rate_counts_only_computed_cells(self):
        """Cache hits land in microseconds; counting them would make the
        ETA of a resumed sweep wildly optimistic."""
        clock = FakeClock()
        p = ProgressTracker(20, clock=clock)
        clock.t = 2.0
        p.cell_cached(10)   # instant cache prefix
        p.cell_completed(4)  # 4 computed in 2 s
        snap = p.snapshot()
        assert snap["cells_per_s"] == 2.0
        assert snap["cache_hit_rate"] == 10 / 14
        # 6 remaining at 2 computed cells/s.
        assert snap["eta_s"] == 3.0

    def test_eta_none_until_something_computed(self):
        clock = FakeClock()
        p = ProgressTracker(5, clock=clock)
        clock.t = 1.0
        p.cell_cached()
        assert p.snapshot()["eta_s"] is None

    def test_eta_zero_when_done(self):
        p = ProgressTracker(1)
        p.cell_completed()
        assert p.snapshot()["eta_s"] == 0.0


class TestSinks:
    def test_on_event_called_per_tick(self):
        events = []
        p = ProgressTracker(3, on_event=events.append)
        p.cell_completed()
        p.cell_cached()
        p.finish()
        assert len(events) == 3
        assert [e["processed"] for e in events] == [1, 2, 2]
        assert events[-1]["done"] is True

    def test_progress_file_atomically_rewritten(self, tmp_path):
        path = tmp_path / "progress.json"
        p = ProgressTracker(2, path=path)
        p.cell_completed()
        first = json.loads(path.read_text())
        assert first["processed"] == 1
        p.cell_completed()
        p.finish()
        final = json.loads(path.read_text())
        assert final["processed"] == 2
        assert final["done"] is True
        assert not list(tmp_path.glob("*.tmp"))


class TestRendering:
    def test_line_contains_rates_and_eta(self):
        clock = FakeClock()
        p = ProgressTracker(8, clock=clock, label="campaign")
        clock.t = 1.0
        p.cell_cached(2)
        p.cell_completed(2)
        line = render_progress_line(p.snapshot())
        assert "campaign: 4/8" in line
        assert "cached=2" in line
        assert "2.0 cells/s" in line
        assert "hit=50%" in line
        assert "eta 2s" in line

    def test_done_line_and_failures(self):
        p = ProgressTracker(2)
        p.cell_completed()
        p.cell_failed()
        p.finish()
        line = render_progress_line(p.snapshot())
        assert "failed=1" in line
        assert "done in" in line


class TestCampaignIntegration:
    def test_campaign_ticks_per_cell_and_resume_counts_cache(self, tmp_path):
        from repro.harness.campaign import run_campaign
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        kwargs = dict(nodes_per_replica=2, total_iterations=10,
                      checkpoint_interval=2.0)
        events = []
        p1 = ProgressTracker(3, on_event=events.append)
        run_campaign("jacobi3d-charm", seeds=range(3), cache=store,
                     progress=p1, **kwargs)
        assert p1.completed == 3 and p1.cached == 0 and p1.done
        # Resume: every cell now comes from the store.
        p2 = ProgressTracker(3)
        run_campaign("jacobi3d-charm", seeds=range(3), cache=store,
                     progress=p2, **kwargs)
        assert p2.cached == 3 and p2.completed == 0 and p2.done
        assert p2.snapshot()["cache_hit_rate"] == 1.0

    def test_chaos_campaign_ticks_progress(self):
        from repro.chaos.campaign import run_chaos_campaign

        p = ProgressTracker(2, label="chaos")
        result = run_chaos_campaign(2, progress=p)
        assert p.processed == 2 and p.done
        assert p.completed + p.failed == len(result.outcomes)
