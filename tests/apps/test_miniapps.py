"""Mini-application tests, parametrized over the paper's suite (Table 2)."""

import numpy as np
import pytest

from repro.apps import MINIAPP_NAMES, descriptor, make_app
from repro.faults.bitflip import BitFlipInjector
from repro.pup import compare_checkpoints, pack, sizeof, unpack
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

SCALE = 1e-4
NODES = 4


def fresh(name, seed=42, nodes=NODES, scale=SCALE):
    return make_app(name, nodes, scale=scale, seed=seed)


@pytest.mark.parametrize("name", MINIAPP_NAMES)
class TestDeterminism:
    def test_two_replicas_bit_identical(self, name):
        a, b = fresh(name), fresh(name)
        a.advance_to(6)
        b.advance_to(6)
        for rank in range(NODES):
            assert compare_checkpoints(pack(a.shard(rank)),
                                       pack(b.shard(rank))).match

    def test_different_seeds_differ(self, name):
        a, b = fresh(name, seed=1), fresh(name, seed=2)
        a.advance_to(3)
        b.advance_to(3)
        assert not np.array_equal(a.result_digest(), b.result_digest())

    def test_state_actually_evolves(self, name):
        a = fresh(name)
        d0 = a.result_digest().copy()
        a.advance_to(5)
        assert not np.array_equal(a.result_digest(), d0)

    def test_digest_is_finite(self, name):
        a = fresh(name)
        a.advance_to(20)
        assert np.isfinite(a.result_digest()).all()


@pytest.mark.parametrize("name", MINIAPP_NAMES)
class TestCheckpointing:
    def test_restore_resumes_identically(self, name):
        a = fresh(name)
        a.advance_to(5)
        shards = [pack(a.shard(r)) for r in range(NODES)]
        a.advance_to(12)
        expected = a.result_digest().copy()

        b = fresh(name)
        for r in range(NODES):
            unpack(b.shard(r), shards[r])
        assert b.iteration == 5
        b.advance_to(12)
        assert np.array_equal(b.result_digest(), expected)

    def test_shards_partition_all_state(self, name):
        a = fresh(name)
        total = sum(sizeof(a.shard(r)) for r in range(NODES))
        # Every shard must carry real state beyond the iteration counter.
        assert total > NODES * 8

    def test_bitflip_reaches_live_state(self, name):
        a, b = fresh(name), fresh(name)
        BitFlipInjector(RngStream(0, f"flip/{name}")).inject(b.shard(2))
        mismatch = any(
            not compare_checkpoints(pack(a.shard(r)), pack(b.shard(r))).match
            for r in range(NODES)
        )
        assert mismatch

    def test_shard_rank_validation(self, name):
        a = fresh(name)
        with pytest.raises(ConfigurationError):
            a.shard(NODES)

    def test_advance_backwards_rejected(self, name):
        a = fresh(name)
        a.advance_to(3)
        with pytest.raises(ConfigurationError):
            a.advance_to(2)


@pytest.mark.parametrize("name", MINIAPP_NAMES)
class TestDescriptors:
    def test_table2_memory_pressure_classification(self, name):
        d = descriptor(name)
        if name in ("leanmd", "minimd"):
            assert d.memory_pressure == "low"
        else:
            assert d.memory_pressure == "high"

    def test_declared_bytes_match_table2_order_of_magnitude(self, name):
        d = descriptor(name)
        if d.memory_pressure == "high":
            assert d.declared_bytes_per_core > 1_000_000
        else:
            assert d.declared_bytes_per_core < 1_000_000

    def test_checkpoint_profile_scales_declared_bytes(self, name):
        a = fresh(name)
        profile = a.checkpoint_profile()
        assert profile.nbytes_per_node == descriptor(name).declared_bytes_per_core * 4

    def test_iteration_time_has_bounded_jitter(self, name):
        a = fresh(name)
        base = descriptor(name).base_iteration_seconds
        times = [a.iteration_time(t, i) for t in range(8) for i in range(8)]
        assert all(base <= x <= 1.06 * base for x in times)
        assert len(set(times)) > 1  # real skew between tasks


class TestTable2Configurations:
    def test_jacobi_per_core_grid(self):
        d = descriptor("jacobi3d-charm")
        assert "64*64*128" in d.table2_configuration
        assert d.declared_bytes_per_core == 64 * 64 * 128 * 8

    def test_leanmd_4000_atoms(self):
        assert "4000" in descriptor("leanmd").table2_configuration

    def test_minimd_1000_atoms(self):
        assert "1000" in descriptor("minimd").table2_configuration

    def test_lulesh_serialization_slowest(self):
        # §6.2: "LULESH takes longer in local checkpointing since it contains
        # more complicated data structures for serialization."
        high_pressure = ("jacobi3d-charm", "jacobi3d-ampi", "hpccg", "lulesh")
        factors = {n: descriptor(n).serialize_factor for n in high_pressure}
        assert max(factors, key=factors.get) == "lulesh"

    def test_md_apps_scattered_memory_penalty(self):
        # §6.2: MD checkpoint data "may be scattered in the memory resulting
        # in extra overheads."
        assert descriptor("leanmd").serialize_factor > 1.0
        assert descriptor("minimd").serialize_factor > 1.0

    def test_registry_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_app("nbody-galaxy", 4)
        with pytest.raises(ConfigurationError):
            descriptor("nbody-galaxy")


class TestHPCCGSpecifics:
    def test_cg_residual_decreases(self):
        app = fresh("hpccg")
        r0 = app.residual_norm
        app.advance_to(10)
        assert app.residual_norm < r0

    def test_matvec_is_spd_like(self):
        # The 27-point operator must be positive definite for CG to work.
        app = fresh("hpccg")
        rng = np.random.default_rng(0)
        for _ in range(3):
            v = rng.uniform(-1, 1, size=app.shape)
            assert float((v * app.matvec(v)).sum()) > 0


class TestMDStability:
    @pytest.mark.parametrize("name", ["leanmd", "minimd"])
    def test_positions_stay_in_box(self, name):
        app = fresh(name, scale=2e-3)
        app.advance_to(50)
        assert (app.pos >= 0).all() and (app.pos < app.box).all()

    @pytest.mark.parametrize("name", ["leanmd", "minimd"])
    def test_velocities_bounded(self, name):
        app = fresh(name, scale=2e-3)
        app.advance_to(50)
        assert np.abs(app.vel).max() < 10.0


class TestLULESHSpecifics:
    def test_fields_stay_physical(self):
        app = fresh("lulesh")
        app.advance_to(30)
        assert (app.energy > 0).all()
        assert (app.volume > 0).all()
        assert (app.pressure > 0).all()

    def test_shock_spreads(self):
        app = fresh("lulesh")
        before = app.velocity.copy()
        app.advance_to(5)
        assert np.abs(app.velocity).sum() > np.abs(before).sum()
