"""ReplicaApp base-class and partitioning tests."""

import numpy as np
import pytest

from repro.apps.base import partition_bounds
from repro.apps.synthetic import SyntheticApp, synthetic_descriptor
from repro.pup import pack, unpack
from repro.util.errors import ConfigurationError


class TestPartitionBounds:
    def test_exact_division(self):
        assert partition_bounds(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_spread_to_front(self):
        bounds = partition_bounds(10, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 3, 2, 2]

    def test_covers_everything_contiguously(self):
        bounds = partition_bounds(100, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c

    def test_rejects_more_parts_than_items(self):
        with pytest.raises(ConfigurationError):
            partition_bounds(3, 4)


class TestSyntheticApp:
    def test_descriptor_customization(self):
        d = synthetic_descriptor(bytes_per_core=123, serialize_factor=2.5,
                                 iteration_seconds=0.7, memory_pressure="low")
        app = SyntheticApp(2, descriptor=d)
        assert app.descriptor.declared_bytes_per_core == 123
        assert app.checkpoint_profile().serialize_factor == 2.5

    def test_state_bounded_under_long_evolution(self):
        app = SyntheticApp(2, seed=5)
        app.advance_to(500)
        assert np.abs(app.state).max() < 10.0

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticApp(2, scale=0.0)
        with pytest.raises(ConfigurationError):
            SyntheticApp(2, scale=1.5)

    def test_nodes_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticApp(0)

    def test_checkpoint_round_trip_mid_run(self):
        a = SyntheticApp(3, seed=1)
        a.advance_to(7)
        shards = [pack(a.shard(r)) for r in range(3)]
        a.advance_to(20)
        target = a.result_digest()

        b = SyntheticApp(3, seed=1)
        for r in range(3):
            unpack(b.shard(r), shards[r])
        b.advance_to(20)
        assert np.array_equal(b.result_digest(), target)
