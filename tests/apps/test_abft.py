"""ABFT-checksummed CG tests (§3.2 design alternative)."""

import numpy as np
import pytest

from repro.apps.abft import ABFTHPCCG, detection_coverage_experiment
from repro.apps.hpccg import HPCCG
from repro.util.errors import ConfigurationError


def fresh(**kw):
    defaults = dict(scale=2e-4, seed=1)
    defaults.update(kw)
    return ABFTHPCCG(2, **defaults)


class TestChecksumInvariant:
    def test_no_false_positives_over_long_runs(self):
        app = fresh()
        app.advance_to(50)
        report = app.abft_verify()
        assert report.clean
        assert max(report.drifts.values()) < 1e-12

    def test_same_numerics_as_plain_hpccg(self):
        guarded = fresh(seed=3)
        plain = HPCCG(2, scale=2e-4, seed=3)
        guarded.advance_to(10)
        plain.advance_to(10)
        assert np.array_equal(guarded.x, plain.x)
        assert np.array_equal(guarded.r, plain.r)
        assert guarded.rho == plain.rho

    def test_checksums_track_every_guarded_vector(self):
        app = fresh()
        app.advance_to(7)
        for name in ABFTHPCCG.GUARDED:
            assert app.checksums[name] == pytest.approx(
                float(getattr(app, name).sum()), rel=1e-10)

    def test_resync_after_restore(self):
        from repro.pup import pack, unpack

        app = fresh()
        app.advance_to(5)
        shards = [pack(app.shard(r)) for r in range(2)]
        app.advance_to(15)
        for r in range(2):
            unpack(app.shard(r), shards[r])
        app.abft_resync()
        assert app.abft_verify().clean


class TestDetection:
    @pytest.mark.parametrize("vector", ["x", "r", "p"])
    def test_detects_large_corruption_in_guarded_vectors(self, vector):
        app = fresh()
        app.advance_to(5)
        getattr(app, vector).reshape(-1)[3] += 0.5
        report = app.abft_verify()
        assert vector in report.corrupted

    def test_blind_to_unguarded_state(self):
        # The fundamental ABFT gap: only instrumented data is covered.
        app = fresh()
        app.advance_to(5)
        app.b.reshape(-1)[3] += 0.5
        assert app.abft_verify().clean

    def test_blind_below_tolerance(self):
        app = fresh(check_rtol=1e-8)
        app.advance_to(5)
        app.x.reshape(-1)[3] += 1e-13  # a low-order mantissa flip
        assert app.abft_verify().clean

    def test_detection_counted(self):
        app = fresh()
        app.advance_to(3)
        app.r.reshape(-1)[0] += 1.0
        app.abft_verify()
        assert app.abft_detections == 1
        assert app.abft_checks == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fresh(check_rtol=0.0)


class TestCoverageExperiment:
    def test_replica_comparison_dominates_abft(self):
        result = detection_coverage_experiment(flips=60, seed=4)
        assert result["replica_detection_rate"] == 1.0
        assert result["abft_detection_rate"] < 0.8
        # The two documented miss modes both occur.
        assert result["abft_miss_unguarded_rate"] > 0
        assert result["abft_miss_below_tolerance_rate"] > 0
        # Accounting closes.
        total = (result["abft_detection_rate"]
                 + result["abft_miss_unguarded_rate"]
                 + result["abft_miss_below_tolerance_rate"])
        assert total == pytest.approx(1.0)
