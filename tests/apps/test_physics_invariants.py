"""Physics/numerics invariants of the mini-applications.

The apps are proxies, but their numerics must stay *credible* — otherwise
SDC-propagation experiments (corruption spreading through a stencil, chaotic
divergence in MD) would be testing artifacts of broken dynamics.
"""

import numpy as np
import pytest

from repro.apps import make_app


class TestJacobiInvariants:
    def test_maximum_principle(self):
        # A harmonic relaxation never exceeds its boundary/initial extremes.
        app = make_app("jacobi3d-charm", 2, scale=1e-4, seed=3)
        interior = app.grid[1:-1, 1:-1, 1:-1]
        hi = max(float(app.grid.max()), 1.0)
        lo = min(float(app.grid.min()), 0.0)
        app.advance_to(100)
        assert float(interior.max()) <= hi + 1e-12
        assert float(interior.min()) >= lo - 1e-12

    def test_converges_towards_harmonic_steady_state(self):
        # Successive updates shrink: the relaxation is a contraction.
        app = make_app("jacobi3d-charm", 2, scale=1e-4, seed=3)
        app.advance_to(10)
        before = app.grid.copy()
        app.advance_to(11)
        step10 = float(np.abs(app.grid - before).max())
        app.advance_to(60)
        before = app.grid.copy()
        app.advance_to(61)
        step60 = float(np.abs(app.grid - before).max())
        assert step60 < step10

    def test_hot_wall_heats_interior(self):
        app = make_app("jacobi3d-charm", 2, scale=1e-4, seed=3)
        near_wall_before = float(app.grid[1, 1:-1, 1:-1].mean())
        app.advance_to(50)
        near_wall_after = float(app.grid[1, 1:-1, 1:-1].mean())
        # The x=0 hot plate (value 1.0) pulls the first interior plane up.
        assert near_wall_after > min(near_wall_before, 0.9)


class TestCGInvariants:
    def test_residual_monotone_decreasing(self):
        app = make_app("hpccg", 2, scale=2e-4, seed=1)
        norms = []
        for _ in range(15):
            norms.append(app.residual_norm)
            app.advance_to(app.iteration + 1)
        # CG residuals are not strictly monotone in general, but for this SPD
        # operator the trend over windows must be decreasing.
        assert norms[-1] < norms[0] * 0.9

    def test_energy_norm_of_error_decreases(self):
        # CG's defining property: the A-norm of the error is monotone.
        app = make_app("hpccg", 2, scale=2e-4, seed=1)
        # Compute a reference solution with many more iterations.
        ref = make_app("hpccg", 2, scale=2e-4, seed=1)
        ref.advance_to(200)
        x_star = ref.x.copy()

        def a_norm_err(a):
            e = a.x - x_star
            return float((e * a.matvec(e)).sum())

        e0 = a_norm_err(app)
        app.advance_to(5)
        e5 = a_norm_err(app)
        app.advance_to(15)
        e15 = a_norm_err(app)
        assert e0 >= e5 - 1e-12 >= e15 - 1e-12


@pytest.mark.parametrize("name", ["leanmd", "minimd"])
class TestMDInvariants:
    def test_momentum_drift_bounded(self, name):
        # Pairwise forces are equal-and-opposite: total momentum is conserved
        # up to floating-point roundoff.
        app = make_app(name, 2, scale=2e-3, seed=4)
        p0 = app.vel.sum(axis=0)
        app.advance_to(40)
        p1 = app.vel.sum(axis=0)
        assert np.abs(p1 - p0).max() < 1e-9 * max(app.n_atoms, 1)

    def test_kinetic_energy_bounded(self, name):
        # Capped/soft potentials with damping: no energy blow-up.
        app = make_app(name, 2, scale=2e-3, seed=4)
        ke0 = float((app.vel ** 2).sum())
        app.advance_to(80)
        ke = float((app.vel ** 2).sum())
        assert ke < 100 * max(ke0, 1e-6)

    def test_perturbations_persist_unlike_jacobi(self, name):
        # The property the vulnerability experiments rely on: in the MD apps
        # a one-bit perturbation *persists* (trajectories never reconverge),
        # whereas the contracting Jacobi relaxation forgives it entirely —
        # which is why the §2.3 window experiments use MD state.
        a = make_app(name, 2, scale=2e-3, seed=4)
        b = make_app(name, 2, scale=2e-3, seed=4)
        b.pos.reshape(-1).view(np.uint8)[13] ^= 1
        delta0 = float(np.abs(a.pos - b.pos).max())
        for app in (a, b):
            app.advance_to(60)
        delta = float(np.abs(a.pos - b.pos).max())
        assert delta > 0.5 * delta0  # no washout

        j1 = make_app("jacobi3d-charm", 2, scale=1e-4, seed=4)
        j2 = make_app("jacobi3d-charm", 2, scale=1e-4, seed=4)
        j2.grid[2, 2, 2] += delta0
        for app in (j1, j2):
            app.advance_to(300)
        jacobi_delta = float(np.abs(j1.grid - j2.grid).max())
        assert jacobi_delta < 1e-3 * delta0  # contraction forgives it


class TestLULESHInvariants:
    def test_total_energy_budget(self):
        # Work extraction is bounded: energy stays positive and the total
        # cannot grow without bound under the damped dynamics.
        app = make_app("lulesh", 2, scale=1e-4, seed=5)
        e0 = float(app.energy.sum())
        app.advance_to(100)
        e = float(app.energy.sum())
        assert (app.energy > 0).all()
        assert e < 2.0 * e0

    def test_volume_clamped_physical(self):
        app = make_app("lulesh", 2, scale=1e-4, seed=5)
        app.advance_to(100)
        assert (app.volume >= 0.2).all()
        assert (app.volume <= 5.0).all()

    def test_pressure_consistent_with_eos(self):
        app = make_app("lulesh", 2, scale=1e-4, seed=5)
        app.advance_to(20)
        expected = (1.4 - 1.0) * app.energy / app.volume
        assert np.allclose(app.pressure, expected)
