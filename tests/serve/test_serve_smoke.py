"""Service smoke: a real ``repro serve`` subprocess, kill -9 and all.

``pytest -m serve_smoke`` is the CI serve-smoke job's selector; the tests
also run in the default suite.  Unlike ``tests/serve/test_resume.py`` (which
*simulates* the crash by abandoning a ServeState), this boots the actual
server process on an ephemeral port, drives it with two clients over real
sockets, SIGKILLs it mid-job, restarts it over the same store, and checks
the resumed job's summary digest against an uninterrupted oracle.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServeClient, ServeState
from repro.store import ResultStore

pytestmark = pytest.mark.serve_smoke

CFG = {"total_iterations": 6, "checkpoint_interval": 2.0, "horizon": 50.0}
#: Heavy enough that a 60-cell job survives past the kill point.
HEAVY_CFG = {"total_iterations": 300, "checkpoint_interval": 5.0,
             "horizon": 500.0}


def start_server(cache_dir, *extra):
    """Boot ``repro serve`` on an ephemeral port; returns (proc, address)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--cache-dir", str(cache_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 60
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError(f"server died at startup: {banner}")
        banner += line
        if "repro-serve listening on " in line:
            address = line.split("listening on ", 1)[1].split()[0]
            return proc, address
    proc.kill()
    raise RuntimeError(f"no listening banner within 60s: {banner}")


def read_resume_line(proc) -> str:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("resumed "):
            return line.strip()
    raise RuntimeError("no resume line on restarted server")


def stop(proc) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.wait(timeout=30)


def cell_count(cache_dir) -> int:
    return len(ResultStore(cache_dir).entries())


def test_two_tenants_then_sigkill_then_resume(tmp_path):
    cache = tmp_path / "cache"
    proc, address = start_server(cache)
    try:
        alice = ServeClient(address, timeout=60)
        bob = ServeClient(address, timeout=60)

        # Two clients, overlapping sweeps: the shared cells are computed
        # once and bob sees them as hits/attached, never as fresh work.
        job_a = alice.submit(tenant="alice", seeds=[0, 1, 2, 3], config=CFG)
        alice.wait(job_a["job_id"], timeout=120)
        job_b = bob.submit(tenant="bob", seeds=[2, 3, 4, 5], config=CFG)
        assert job_b["cached_at_submit"] + job_b["attached_at_submit"] == 2
        bob.wait(job_b["job_id"], timeout=120)
        assert cell_count(cache) == 6  # seeds 0..5, shared ones not doubled

        # Overlapping resubmit from a third tenant: all hits, zero new
        # cells, done within the request.
        before = cell_count(cache)
        job_c = alice.submit(tenant="carol", seeds=list(range(6)),
                             config=CFG)
        assert job_c["status"] == "done"
        assert job_c["cached_at_submit"] == 6
        assert cell_count(cache) == before

        # A heavier job, killed mid-flight.
        job_d = alice.submit(tenant="dave", seeds=list(range(100, 160)),
                             config=HEAVY_CFG)
        assert job_d["status"] == "running"
        time.sleep(0.4)
        alice.close()
        bob.close()
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        done_before_kill = cell_count(cache) - 6
        assert done_before_kill < 60, "job finished before the kill; " \
            "raise HEAVY_CFG iterations"
    finally:
        stop(proc)

    # Restart over the same store: the incomplete job resumes, cells done
    # before the kill are saved, and the final summary digest is bitwise
    # identical to an uninterrupted run.
    proc2, address2 = start_server(cache)
    try:
        resume_line = read_resume_line(proc2)
        assert "resumed 1 job(s)" in resume_line
        client = ServeClient(address2, timeout=60)
        status = client.wait(job_d["job_id"], timeout=300)
        assert status["status"] == "done"
        assert status["resumed"] is True
        assert status["saved_on_resume"] == done_before_kill
        digest = client.result(job_d["job_id"])["summary_digest"]
        client.close()
    finally:
        stop(proc2)

    oracle = ServeState(ResultStore(tmp_path / "oracle"))
    job_o = oracle.submit(tenant="oracle", app="jacobi3d-charm",
                          seeds=list(range(100, 160)), config=HEAVY_CFG)
    from repro.harness.experiment import run_experiment_report
    from repro.store import report_to_dict

    while True:
        cell = oracle.next_cell()
        if cell is None:
            break
        oracle.complete_cell(cell.key, report_to_dict(
            run_experiment_report(cell.app, cell.seed, cell.config)))
    assert oracle.job_result(job_o.job_id)["summary_digest"] == digest

    # The store survived a SIGKILL mid-traffic: every record must verify.
    from repro.cli import main

    assert main(["store", "verify", "--cache-dir", str(cache)]) == 0


def test_backpressure_over_real_sockets(tmp_path):
    proc, address = start_server(tmp_path / "cache", "--tenant-quota", "4")
    try:
        client = ServeClient(address, timeout=60)
        client.submit(tenant="greedy", seeds=list(range(4)),
                      config=HEAVY_CFG)
        from repro.serve import ServeError

        with pytest.raises(ServeError) as exc:
            client.submit(tenant="greedy", seeds=[9], config=HEAVY_CFG)
        assert exc.value.status == 429
        assert exc.value.retry_after >= 1
        client.close()
    finally:
        stop(proc)
