"""Lease registry + job journal: the store-level durability primitives."""

from repro.store import (
    JOB_FORMAT,
    JobJournal,
    LEASE_FORMAT,
    LeaseRegistry,
)


class TestLeaseRegistry:
    def test_acquire_release_roundtrip(self, tmp_path):
        reg = LeaseRegistry(tmp_path)
        reg.acquire("k1", jobs=["job-000001"], tenant="a")
        assert list(reg.active()) == ["k1"]
        record = reg.active()["k1"]
        assert record["format"] == LEASE_FORMAT
        assert record["jobs"] == ["job-000001"]
        reg.release("k1")
        assert reg.active() == {}

    def test_release_is_idempotent(self, tmp_path):
        reg = LeaseRegistry(tmp_path)
        reg.release("never-acquired")  # no raise

    def test_sweep_clears_everything(self, tmp_path):
        reg = LeaseRegistry(tmp_path)
        reg.acquire("k1", jobs=[], tenant="a")
        reg.acquire("k2", jobs=[], tenant="b")
        assert sorted(reg.sweep()) == ["k1", "k2"]
        assert reg.active() == {}

    def test_corrupt_lease_is_ignored(self, tmp_path):
        reg = LeaseRegistry(tmp_path)
        reg.acquire("k1", jobs=[], tenant="a")
        (reg.dir / "junk.json").write_text("{not json")
        assert list(reg.active()) == ["k1"]


class TestJobJournal:
    def test_write_load_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_job({"job_id": "job-000001", "status": "running",
                           "cells": {"k": 0}})
        loaded = journal.load_jobs()
        assert loaded["job-000001"]["status"] == "running"
        assert loaded["job-000001"]["format"] == JOB_FORMAT

    def test_rewrite_replaces_atomically(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_job({"job_id": "job-000001", "status": "running"})
        journal.write_job({"job_id": "job-000001", "status": "done"})
        assert journal.load_jobs()["job-000001"]["status"] == "done"
        assert len(list(journal.dir.glob("*.json"))) == 1

    def test_non_durable_write_still_lands(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_job({"job_id": "job-000002", "status": "done"},
                          durable=False)
        assert "job-000002" in journal.load_jobs()

    def test_corrupt_record_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_job({"job_id": "job-000001", "status": "running"})
        (journal.dir / "job-000009.json").write_text("{torn")
        assert list(journal.load_jobs()) == ["job-000001"]

    def test_event_journal_tolerates_torn_tail(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append_event({"event": "submitted", "job": "job-000001"})
        journal.append_event({"event": "done", "job": "job-000001"})
        with open(journal.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn')  # the kill -9 mid-append
        entries, problems = journal.journal_entries()
        assert [e["event"] for e in entries] == ["submitted", "done"]
        assert len(problems) == 1 and "torn" in problems[0]
