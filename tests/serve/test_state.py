"""ServeState scheduling core: dedup, quotas, backpressure, cancellation.

These tests drive the state machine directly (no HTTP, no event loop):
cells are claimed with ``next_cell`` and finished with ``complete_cell`` /
``fail_cell`` by hand, so every interleaving is deterministic.
"""

import pytest

from repro.serve import (
    QueueFull,
    QuotaExceeded,
    ServeState,
    UnknownJob,
)
from repro.store import ResultStore

CFG = {"total_iterations": 6, "checkpoint_interval": 2.0, "horizon": 50.0}


def make_state(tmp_path, **kwargs):
    return ServeState(ResultStore(tmp_path / "cache"), **kwargs)


def drain(state, payload=None):
    """Run every queued cell to completion with a dummy payload."""
    finished = []
    while True:
        cell = state.next_cell()
        if cell is None:
            return finished
        finished.extend(
            state.complete_cell(cell.key, payload or {"seed": cell.seed}))


class TestSubmitClassification:
    def test_fresh_cells_enqueue(self, tmp_path):
        state = make_state(tmp_path)
        job = state.submit(tenant="a", app="jacobi3d-charm",
                           seeds=[0, 1, 2], config=CFG)
        assert job.status == "running"
        assert job.queued_at_submit == 3
        assert state.queued_cells == 3

    def test_duplicate_seeds_collapse(self, tmp_path):
        state = make_state(tmp_path)
        job = state.submit(tenant="a", app="jacobi3d-charm",
                           seeds=[5, 5, 5, 6], config=CFG)
        assert job.seeds == [5, 6]
        assert len(job.cells) == 2

    def test_overlap_attaches_to_in_flight(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        job_b = state.submit(tenant="b", app="jacobi3d-charm", seeds=[1, 2],
                             config=CFG)
        assert job_b.attached_at_submit == 1
        assert job_b.queued_at_submit == 1
        # One computation of seed 1, not two.
        assert state.queued_cells == 3

    def test_completed_cells_are_cache_hits(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        drain(state)
        job = state.submit(tenant="b", app="jacobi3d-charm", seeds=[0, 1],
                           config=CFG)
        assert job.status == "done"
        assert job.cached_at_submit == 2
        assert state.queued_cells == 0

    def test_different_config_is_a_different_cell(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0], config=CFG)
        other = dict(CFG, total_iterations=7)
        job = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                           config=other)
        assert job.queued_at_submit == 1
        assert state.queued_cells == 2

    def test_shared_cell_completion_ticks_both_jobs(self, tmp_path):
        state = make_state(tmp_path)
        job_a = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        job_b = state.submit(tenant="b", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        finished = drain(state)
        assert {j.job_id for j in finished} == {job_a.job_id, job_b.job_id}
        assert job_a.status == job_b.status == "done"


class TestBackpressure:
    def test_tenant_quota_rejects(self, tmp_path):
        state = make_state(tmp_path, tenant_quota=2)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        with pytest.raises(QuotaExceeded) as exc:
            state.submit(tenant="a", app="jacobi3d-charm", seeds=[2],
                         config=CFG)
        assert exc.value.retry_after >= 1

    def test_quota_is_per_tenant(self, tmp_path):
        state = make_state(tmp_path, tenant_quota=2)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        job = state.submit(tenant="b", app="jacobi3d-charm", seeds=[2, 3],
                           config=CFG)
        assert job.queued_at_submit == 2

    def test_attaching_counts_against_the_new_tenants_quota(self, tmp_path):
        state = make_state(tmp_path, tenant_quota=1)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0], config=CFG)
        # b attaches to a's in-flight cell: still b's outstanding work.
        state.submit(tenant="b", app="jacobi3d-charm", seeds=[0], config=CFG)
        with pytest.raises(QuotaExceeded):
            state.submit(tenant="b", app="jacobi3d-charm", seeds=[9],
                         config=CFG)

    def test_queue_bound_rejects(self, tmp_path):
        state = make_state(tmp_path, queue_limit=3)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1, 2],
                     config=CFG)
        with pytest.raises(QueueFull):
            state.submit(tenant="b", app="jacobi3d-charm", seeds=[3],
                         config=CFG)

    def test_rejection_has_no_side_effects(self, tmp_path):
        state = make_state(tmp_path, queue_limit=2)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        jobs_before = set(state.jobs)
        with pytest.raises(QueueFull):
            state.submit(tenant="b", app="jacobi3d-charm", seeds=[2, 3],
                         config=CFG)
        assert set(state.jobs) == jobs_before
        assert state.queued_cells == 2
        assert state.stats()["outstanding_by_tenant"] == {"a": 2}

    def test_completion_frees_quota(self, tmp_path):
        state = make_state(tmp_path, tenant_quota=2)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG)
        drain(state)
        job = state.submit(tenant="a", app="jacobi3d-charm", seeds=[2, 3],
                           config=CFG)
        assert job.queued_at_submit == 2


class TestPriority:
    def test_lower_priority_value_runs_first(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                     config=CFG, priority=20)
        state.submit(tenant="b", app="jacobi3d-charm", seeds=[1],
                     config=CFG, priority=5)
        first = state.next_cell()
        assert first.seed == 1

    def test_attach_boosts_shared_cell(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                     config=CFG, priority=20)
        # b urgently wants seed 1 (already queued by a at priority 20).
        state.submit(tenant="b", app="jacobi3d-charm", seeds=[1],
                     config=CFG, priority=1)
        first = state.next_cell()
        assert first.seed == 1
        # The stale duplicate heap entry is skipped, not double-claimed.
        second = state.next_cell()
        assert second.seed == 0
        assert state.next_cell() is None


class TestFailureAndCancel:
    def test_fail_cell_fails_every_waiter(self, tmp_path):
        state = make_state(tmp_path)
        job_a = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        job_b = state.submit(tenant="b", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        cell = state.next_cell()
        failed = state.fail_cell(cell.key, "boom")
        assert {j.job_id for j in failed} == {job_a.job_id, job_b.job_id}
        assert job_a.status == "failed" and "boom" in job_a.error
        assert state.stats()["outstanding_by_tenant"] == {}

    def test_cancel_drops_unshared_queued_cells(self, tmp_path):
        state = make_state(tmp_path)
        job = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                           config=CFG)
        cancelled = state.cancel_job(job.job_id)
        assert cancelled.status == "cancelled"
        assert state.queued_cells == 0
        assert state.next_cell() is None

    def test_cancel_keeps_shared_cells(self, tmp_path):
        state = make_state(tmp_path)
        job_a = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        job_b = state.submit(tenant="b", app="jacobi3d-charm", seeds=[0],
                             config=CFG)
        state.cancel_job(job_a.job_id)
        assert state.queued_cells == 1  # b still wants it
        finished = drain(state)
        assert [j.job_id for j in finished] == [job_b.job_id]

    def test_cancel_unknown_job_raises(self, tmp_path):
        state = make_state(tmp_path)
        with pytest.raises(UnknownJob):
            state.cancel_job("job-999999")

    def test_cancel_terminal_job_is_a_no_op(self, tmp_path):
        state = make_state(tmp_path)
        job = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                           config=CFG)
        drain(state)
        assert state.cancel_job(job.job_id).status == "done"


class TestDurabilityRecords:
    def test_outstanding_job_is_journaled(self, tmp_path):
        state = make_state(tmp_path)
        job = state.submit(tenant="a", app="jacobi3d-charm", seeds=[0],
                           config=CFG)
        records = state.journal.load_jobs()
        assert records[job.job_id]["status"] == "running"
        assert len(records[job.job_id]["cells"]) == 1

    def test_all_cache_hit_job_skips_the_job_record(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0], config=CFG)
        drain(state)
        before = set(state.journal.load_jobs())
        job = state.submit(tenant="b", app="jacobi3d-charm", seeds=[0],
                           config=CFG)
        assert job.status == "done"
        # Nothing new to resume: no durable record for an all-hit job.
        assert set(state.journal.load_jobs()) == before

    def test_running_cell_leaves_a_lease(self, tmp_path):
        state = make_state(tmp_path)
        state.submit(tenant="a", app="jacobi3d-charm", seeds=[0], config=CFG)
        cell = state.next_cell()
        assert list(state.leases.active()) == [cell.key]
        state.complete_cell(cell.key, {"ok": True})
        assert state.leases.active() == {}
