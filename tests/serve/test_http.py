"""The HTTP layer end to end: routes, dedup across clients, 429s, metrics.

Each test boots a real ``CampaignServer`` on an ephemeral port (background
thread, in-process) and talks to it over real sockets with ``ServeClient``.
Simulation cells are tiny (6 iterations, ~ms each); tests that need to
observe *in-flight* sharing inject a gated executor instead.
"""

import threading

import pytest

from repro.serve import CampaignServer, ServeClient, ServeError, ServeState
from repro.store import ResultStore

CFG = {"total_iterations": 6, "checkpoint_interval": 2.0, "horizon": 50.0}


@pytest.fixture
def served(tmp_path):
    """A running server + connected client; tears both down."""
    state = ServeState(ResultStore(tmp_path / "cache"))
    server = CampaignServer(state, workers=1).start_background()
    client = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
    yield server, client
    client.close()
    server.stop_background()


def test_healthz_and_404(served):
    _, client = served
    health = client.health()
    assert health["ok"] is True
    assert health["queued_cells"] == 0
    with pytest.raises(ServeError) as exc:
        client.job("job-999999")
    assert exc.value.status == 404


def test_submit_runs_to_done_with_result(served):
    _, client = served
    job = client.submit(tenant="a", seeds=[0, 1], config=CFG)
    assert job["status"] in ("running", "done")
    status = client.wait(job["job_id"], timeout=60)
    assert status["status"] == "done"
    assert status["cells_done"] == 2
    result = client.result(job["job_id"])
    assert result["summary"]["runs"] == 2
    assert len(result["summary_digest"]) == 64


def test_result_of_unfinished_job_is_409(served):
    server, client = served
    # Gate the worker so the job stays running while we poke at it.
    gate = threading.Event()
    orig_next = server.state.next_cell

    def held_next():
        if not gate.is_set():
            return None  # worker finds no work until the gate opens
        return orig_next()

    server.state.next_cell = held_next
    try:
        job = client.submit(tenant="a", seeds=[7], config=CFG)
        assert job["status"] == "running"
        with pytest.raises(ServeError) as exc:
            client.result(job["job_id"])
        assert exc.value.status == 409
    finally:
        server.state.next_cell = orig_next
        gate.set()
        # The worker went to sleep on an empty queue; wake it back up.
        server._loop.call_soon_threadsafe(server._wake.set)
    client.wait(job["job_id"], timeout=60)


def test_two_tenants_share_cached_cells(served):
    _, client_a = served
    server = served[0]
    client_b = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
    try:
        job_a = client_a.submit(tenant="alice", seeds=[0, 1, 2], config=CFG)
        client_a.wait(job_a["job_id"], timeout=60)
        job_b = client_b.submit(tenant="bob", seeds=[1, 2, 3], config=CFG)
        assert job_b["cached_at_submit"] == 2
        assert job_b["queued_at_submit"] == 1
        client_b.wait(job_b["job_id"], timeout=60)
        # Full-overlap resubmit completes within the request: zero new work.
        job_c = client_b.submit(tenant="carol", seeds=[0, 1, 2, 3],
                                config=CFG)
        assert job_c["status"] == "done"
        assert job_c["cached_at_submit"] == 4
    finally:
        client_b.close()


def test_in_flight_dedup_between_tenants(tmp_path):
    """While tenant a's cell is mid-computation, tenant b attaches to it."""
    release = threading.Event()
    started = threading.Event()

    async def gated_executor(cell):
        import asyncio

        from repro.harness.experiment import run_experiment_report
        from repro.store import report_to_dict

        started.set()
        while not release.is_set():
            await asyncio.sleep(0.005)
        return report_to_dict(
            run_experiment_report(cell.app, cell.seed, cell.config))

    state = ServeState(ResultStore(tmp_path / "cache"))
    server = CampaignServer(state, workers=1,
                            executor=gated_executor).start_background()
    client = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
    try:
        job_a = client.submit(tenant="a", seeds=[5], config=CFG)
        assert started.wait(timeout=30)  # a's cell is now running
        job_b = client.submit(tenant="b", seeds=[5], config=CFG)
        assert job_b["attached_at_submit"] == 1
        assert job_b["queued_at_submit"] == 0
        release.set()
        sa = client.wait(job_a["job_id"], timeout=60)
        sb = client.wait(job_b["job_id"], timeout=60)
        assert sa["status"] == sb["status"] == "done"
        # One computation: the shared cell ticked both jobs.
        assert client.health()["known_cells"] == 1
    finally:
        client.close()
        server.stop_background()


def test_quota_surfaces_as_429_with_retry_after(tmp_path):
    state = ServeState(ResultStore(tmp_path / "cache"), tenant_quota=2)
    server = CampaignServer(state, workers=1).start_background()
    client = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
    try:
        client.submit(tenant="a", seeds=[0, 1], config=CFG)
        with pytest.raises(ServeError) as exc:
            client.submit(tenant="a", seeds=[2, 3], config=CFG)
        assert exc.value.status == 429
        assert exc.value.retry_after >= 1
    finally:
        client.close()
        server.stop_background()


def test_bad_requests_are_400(served):
    _, client = served
    with pytest.raises(ServeError) as exc:
        client.submit(tenant="a", app="not-a-real-app", seeds=[0])
    assert exc.value.status == 400
    with pytest.raises(ServeError) as exc:
        client._request("POST", "/v1/jobs", {"seeds": "nope"})
    assert exc.value.status == 400


def test_cancel_via_http(served):
    server, client = served
    orig_next = server.state.next_cell
    server.state.next_cell = lambda: None  # hold the queue
    try:
        job = client.submit(tenant="a", seeds=[0, 1], config=CFG)
        cancelled = client.cancel(job["job_id"])
        assert cancelled["status"] == "cancelled"
        assert client.health()["queued_cells"] == 0
    finally:
        server.state.next_cell = orig_next


def test_jobs_listing_filters_by_tenant(served):
    _, client = served
    ja = client.submit(tenant="a", seeds=[0], config=CFG)
    jb = client.submit(tenant="b", seeds=[1], config=CFG)
    client.wait(ja["job_id"], timeout=60)
    client.wait(jb["job_id"], timeout=60)
    assert {j["tenant"] for j in client.jobs()} == {"a", "b"}
    assert [j["job_id"] for j in client.jobs(tenant="b")] == [jb["job_id"]]


def test_prometheus_metrics_endpoint(served):
    _, client = served
    job = client.submit(tenant="a", seeds=[0], config=CFG)
    client.wait(job["job_id"], timeout=60)
    client.submit(tenant="b", seeds=[0], config=CFG)  # cache hit
    text = client.metrics_text()
    assert text.endswith("# EOF\n")
    assert "# TYPE serve_jobs_submitted_total counter" in text
    assert "serve_cells_computed_total 1" in text
    assert "serve_cells_cache_hits_total 1" in text
    assert 'serve_responses_total{code="200"}' in text


def test_job_metrics_merge_observability(tmp_path):
    """Cells run with collect_metrics on; the job endpoint merges them."""
    state = ServeState(ResultStore(tmp_path / "cache"))
    server = CampaignServer(state, workers=1).start_background()
    client = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
    try:
        cfg = dict(CFG, collect_metrics=True)
        job = client.submit(tenant="a", seeds=[0, 1], config=cfg)
        client.wait(job["job_id"], timeout=60)
        obs = client.job_metrics(job["job_id"])
        assert obs["cells_merged"] == 2
        assert obs["metrics"] is not None
        assert "counters" in obs["metrics"]
    finally:
        client.close()
        server.stop_background()
