"""Campaign-server tests: scheduling core, HTTP API, durability, smoke."""
