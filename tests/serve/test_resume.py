"""Crash-resume matrix: a ServeState rebuilt over an abandoned store.

A kill -9 is simulated the honest way — the first ``ServeState`` is simply
abandoned mid-job (no shutdown hook runs, exactly like SIGKILL), and a
second one is constructed over the same cache root.  The matrix walks the
kill point across the job (0 cells done, some done, all done), asserting
the resume invariants each time:

* cells already in the store are *saved* (never recomputed),
* the rest are re-enqueued and the job completes,
* the finished summary digest is bitwise-identical to an uninterrupted run,
* stale leases from the dead process are swept.
"""

import pytest

from repro.harness.experiment import run_experiment_report
from repro.serve import ServeState
from repro.store import ResultStore, report_to_dict

CFG = {"total_iterations": 6, "checkpoint_interval": 2.0, "horizon": 50.0}
SEEDS = [0, 1, 2, 3]


def compute(cell) -> dict:
    return report_to_dict(
        run_experiment_report(cell.app, cell.seed, cell.config))


def run_to_completion(state):
    while True:
        cell = state.next_cell()
        if cell is None:
            return
        state.complete_cell(cell.key, compute(cell))


def clean_digest(tmp_path):
    """The oracle: the same sweep computed with no interruption."""
    state = ServeState(ResultStore(tmp_path / "oracle"))
    job = state.submit(tenant="oracle", app="jacobi3d-charm", seeds=SEEDS,
                       config=CFG)
    run_to_completion(state)
    return state.job_result(job.job_id)["summary_digest"]


@pytest.mark.parametrize("cells_before_kill", [0, 1, 2, len(SEEDS) - 1])
def test_kill_point_matrix(tmp_path, cells_before_kill):
    store_root = tmp_path / "cache"
    first = ServeState(ResultStore(store_root))
    job = first.submit(tenant="a", app="jacobi3d-charm", seeds=SEEDS,
                       config=CFG)
    for _ in range(cells_before_kill):
        cell = first.next_cell()
        first.complete_cell(cell.key, compute(cell))
    # One cell mid-computation at kill time: it has a lease on disk but
    # will never complete.
    interrupted = first.next_cell()
    assert interrupted is not None
    del first  # the kill -9: no shutdown path runs

    second = ServeState(ResultStore(store_root))
    stats = second.resume_stats
    job2 = second.jobs[job.job_id]
    assert job2.status == "running"
    assert job2.resumed
    assert job2.saved_on_resume == cells_before_kill
    assert stats["requeued_cells"] == len(SEEDS) - cells_before_kill
    assert stats["stale_leases"] == 1
    run_to_completion(second)
    assert second.jobs[job.job_id].status == "done"
    assert second.job_result(job.job_id)["summary_digest"] == \
        clean_digest(tmp_path)


def test_killed_after_last_store_put_resumes_to_done(tmp_path):
    """Kill between the final cell landing in the store and the job record
    flipping to done: resume must find every cell saved and finish the job
    without enqueuing anything."""
    from repro.store import KIND_RUN_REPORT

    store_root = tmp_path / "cache"
    store = ResultStore(store_root)
    first = ServeState(store)
    job = first.submit(tenant="a", app="jacobi3d-charm", seeds=SEEDS,
                       config=CFG)
    # Land every cell in the store directly — complete_cell never runs, so
    # the job record on disk still says "running" (the kill point).
    for cell in list(first.cells.values()):
        store.put(cell.material, compute(cell), kind=KIND_RUN_REPORT)
    del first

    second = ServeState(ResultStore(store_root))
    job2 = second.jobs[job.job_id]
    assert job2.status == "done"
    assert job2.saved_on_resume == len(SEEDS)
    assert second.queued_cells == 0
    assert second.job_result(job.job_id)["summary_digest"] == \
        clean_digest(tmp_path)


def test_double_crash_converges(tmp_path):
    """Crash, resume, crash again mid-resume, resume again."""
    store_root = tmp_path / "cache"
    first = ServeState(ResultStore(store_root))
    job = first.submit(tenant="a", app="jacobi3d-charm", seeds=SEEDS,
                       config=CFG)
    cell = first.next_cell()
    first.complete_cell(cell.key, compute(cell))
    del first

    second = ServeState(ResultStore(store_root))
    cell = second.next_cell()
    second.complete_cell(cell.key, compute(cell))
    del second

    third = ServeState(ResultStore(store_root))
    assert third.jobs[job.job_id].saved_on_resume == 2
    run_to_completion(third)
    assert third.jobs[job.job_id].status == "done"
    assert third.job_result(job.job_id)["summary_digest"] == \
        clean_digest(tmp_path)


def test_resume_revalidates_recorded_keys(tmp_path):
    """Stale recorded cell keys (changed code fingerprint) are recomputed.

    The job record on disk names content addresses derived from the source
    tree at submit time.  If they no longer match a fresh expansion, resume
    must trust the *fresh* keys — the store would miss on the stale ones —
    and count the mismatches.
    """
    import json

    store_root = tmp_path / "cache"
    first = ServeState(ResultStore(store_root))
    job = first.submit(tenant="a", app="jacobi3d-charm", seeds=[0, 1],
                       config=CFG)
    del first

    from repro.store import JobJournal

    record_path = JobJournal(store_root).path(job.job_id)
    record = json.loads(record_path.read_text())
    record["cells"] = {f"stale-{i}": seed
                       for i, seed in enumerate(sorted(
                           record["cells"].values()))}
    record_path.write_text(json.dumps(record))

    resumed = ServeState(ResultStore(store_root))
    assert resumed.resume_stats["key_mismatches"] == 2
    assert resumed.queued_cells == 2  # fresh keys enqueued, stale ignored
    run_to_completion(resumed)
    assert resumed.jobs[job.job_id].status == "done"


def test_resume_is_idempotent_when_nothing_outstanding(tmp_path):
    """A server over a quiescent store resumes nothing."""
    store_root = tmp_path / "cache"
    first = ServeState(ResultStore(store_root))
    first.submit(tenant="a", app="jacobi3d-charm", seeds=[0], config=CFG)
    run_to_completion(first)
    del first

    second = ServeState(ResultStore(store_root))
    assert second.resume_stats["jobs"] == 0
    assert second.queued_cells == 0
    # Terminal jobs are still listed for `repro jobs`.
    assert [j.status for j in second.jobs.values()] == ["done"]


def test_terminal_jobs_survive_restart_with_results(tmp_path):
    store_root = tmp_path / "cache"
    first = ServeState(ResultStore(store_root))
    job = first.submit(tenant="a", app="jacobi3d-charm", seeds=SEEDS,
                       config=CFG)
    run_to_completion(first)
    digest = first.job_result(job.job_id)["summary_digest"]
    del first

    second = ServeState(ResultStore(store_root))
    assert second.job_result(job.job_id)["summary_digest"] == digest
