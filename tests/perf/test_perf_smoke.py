"""Perf-suite smoke tests: run every micro-benchmark once with tiny sizes.

Marked ``perf_smoke`` so they can be selected standalone
(``pytest -m perf_smoke``); they also run in the default suite, so the
benchmarks in ``benchmarks/perf/`` cannot silently rot.
"""

import json

import pytest

from benchmarks.perf.bench_checkpoint import (
    MultiFieldState,
    bench_campaign,
    bench_fletcher,
    bench_incremental_checksum,
    bench_pack,
    bench_tiered_persist,
    legacy_pack,
    run_all,
)
from benchmarks.perf.bench_des import (
    LegacySimulator,
    bench_event_dispatch,
    bench_message_fanout,
    bench_periodic_timers,
    run_all_des,
)
from benchmarks.perf.run_bench import main as run_bench_main
from repro.pup.puper import pack

pytestmark = pytest.mark.perf_smoke

TINY_MIB = 1 / 16  # 64 KiB payloads keep the smoke run fast


class TestMicroBenchmarks:
    def test_bench_pack_reports_speedups(self):
        result = bench_pack(total_mib=TINY_MIB, nfields=4, repeats=1)
        assert result["legacy_pack_s"] > 0
        assert result["pack_s"] > 0
        assert result["pack_into_s"] > 0
        assert result["pack_speedup_vs_legacy"] > 0
        assert result["pack_into_gib_per_s"] > 0

    def test_bench_fletcher_reports_throughput(self):
        result = bench_fletcher(total_mib=TINY_MIB, repeats=1)
        for key in ("fletcher32_s", "fletcher64_s", "striped_digest_s",
                    "seed_striped_digest_s"):
            assert result[key] > 0
        # The seed reference shares the gather but adds copies; the current
        # path must never fall behind it (the bench itself also asserts the
        # two digests stay bit-identical).
        assert result["striped_speedup_vs_seed"] > 0

    def test_bench_incremental_reports_speedup(self):
        result = bench_incremental_checksum(total_mib=TINY_MIB, nfields=4,
                                            repeats=2)
        assert result["full_recompute_s"] > 0
        assert result["incremental_s"] > 0
        assert result["incremental_speedup"] > 0

    def test_bench_campaign_parallel_matches_serial(self):
        result = bench_campaign(seeds=2, workers=2, total_iterations=20)
        assert result["summaries_identical"]
        assert result["serial_s"] > 0 and result["parallel_s"] > 0

    def test_bench_tiered_persist_gates_hold_at_smoke_size(self):
        result = bench_tiered_persist(total_mib=TINY_MIB, nshards=4,
                                      repeats=1)
        assert result["persist_atomic_s"] > 0
        assert result["persist_unsafe_s"] > 0
        assert result["persist_gib_per_s"] > 0
        assert result["sim_safety_overhead"] >= 1.0
        assert result["restore_fallback_correct"]

    def test_legacy_pack_matches_zero_copy_pack(self):
        obj = MultiFieldState(4, int(TINY_MIB * (1 << 20)))
        legacy = legacy_pack(obj)
        fast = pack(obj)
        assert bytes(legacy.buffer) == bytes(fast.buffer)
        assert [f.name for f in legacy.fields] == [f.name for f in fast.fields]


class TestDesBenchmarks:
    """Engine micro-benches: both engines must agree on the workload before
    any timing is meaningful (the benches assert it; these keep them honest
    at smoke sizes)."""

    def test_dispatch_engines_process_same_events(self):
        result = bench_event_dispatch(n_events=2_000, depth=128, repeats=1)
        assert result["n_events"] == 2_000 + 128
        assert result["dispatch_s"] > 0
        assert result["legacy_dispatch_s"] > 0
        assert result["dispatch_speedup_vs_legacy"] > 0
        assert result["dispatch_handle_speedup_vs_legacy"] > 0

    def test_periodic_matches_resched_tick_counts(self):
        result = bench_periodic_timers(n_timers=4, ticks=50, repeats=1)
        assert result["ticks_fired"] == 4 * 50
        assert result["periodic_speedup_vs_resched"] > 0

    def test_message_fanout_counts(self):
        result = bench_message_fanout(n_nodes=4, rounds=10, repeats=1)
        assert result["messages"] == 40
        assert result["fastpath_speedup"] > 0

    def test_legacy_replica_is_deterministic(self):
        """The embedded baseline replays the same sequence as itself."""
        def trace(sim):
            order = []
            sim.schedule(2.0, order.append, "late")
            sim.schedule(1.0, order.append, "early")
            h = sim.schedule(1.5, order.append, "never")
            h.cancel()
            sim.schedule(1.0, order.append, "early-tie")
            sim.run()
            return order, sim.now

        assert trace(LegacySimulator()) == trace(LegacySimulator()) == (
            ["early", "early-tie", "late"], 2.0)

    def test_run_all_des_quick_covers_every_section(self):
        results = run_all_des(quick=True)
        assert set(results) == {
            "des_dispatch", "des_periodic", "des_messages", "des_acr"}
        assert results["des_acr"]["completed"]


class TestTelemetryNeutral:
    """Disabled telemetry must not cost anything measurable (the obs layer's
    overhead-neutrality contract; see docs/observability.md)."""

    def test_null_tracer_call_overhead_is_trivial(self):
        from time import perf_counter

        from repro.obs import NULL_METRICS, NULL_TRACER

        n = 200_000
        t0 = perf_counter()
        for _ in range(n):
            sid = NULL_TRACER.begin("x", 0.0)
            NULL_TRACER.end(sid, 1.0)
            NULL_METRICS.counter("c").inc()
        elapsed = perf_counter() - t0
        # ~3 no-op calls per loop; anything close to 10 µs/iteration would
        # mean the "no-op" path grew real work.
        assert elapsed / n < 10e-6

    def test_telemetry_does_not_change_event_count(self):
        from repro.harness.experiment import run_acr_experiment
        from repro.obs import MetricsRegistry, SpanTracer

        plain = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1)
        traced = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1,
            tracer=SpanTracer(), metrics=MetricsRegistry())
        assert (traced.acr.sim.events_processed
                == plain.acr.sim.events_processed)
        assert traced.report.final_time == plain.report.final_time

    def test_disabled_series_schedules_no_sampling_events(self):
        """``series=None`` (the NULL_SERIES default) must leave the run
        bit-identical: same event count, same final time, no series on the
        report."""
        from repro.harness.experiment import run_acr_experiment

        plain = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1)
        explicit_null = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1, series=None)
        assert (explicit_null.acr.sim.events_processed
                == plain.acr.sim.events_processed)
        assert explicit_null.report.final_time == plain.report.final_time
        assert plain.report.series is None
        assert explicit_null.report.series is None

    def test_enabled_series_only_adds_sampling_ticks(self):
        """Sampling is a different (still deterministic) execution: the
        outcome is unchanged and the event count grows by exactly the
        sampling ticks the periodic timer fired."""
        from repro.harness.experiment import run_acr_experiment
        from repro.obs import TimeSeriesRecorder

        plain = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1)
        series = TimeSeriesRecorder(interval=1.0)
        sampled = run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, total_iterations=40,
            checkpoint_interval=2.0, seed=1, series=series)
        assert sampled.report.final_time == plain.report.final_time
        assert sampled.report.completed == plain.report.completed
        # Every extra event is one sampling tick; the final end-of-run
        # sample happens outside the event loop (and collapses onto the
        # last tick when they coincide), so ticks >= samples - 1.
        extra = (sampled.acr.sim.events_processed
                 - plain.acr.sim.events_processed)
        assert extra >= len(series) - 1 > 0
        assert sampled.report.series is not None
        assert sampled.report.series["times"] == series.times


class TestRunBenchEntryPoint:
    def test_quick_mode_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_checkpoint.json"
        assert run_bench_main(["--quick", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "checkpoint_hot_path"
        assert set(payload["results"]) == {
            "pack", "fletcher", "incremental_checksum", "tiered_persist",
            "campaign", "des_dispatch", "des_periodic", "des_messages",
            "des_acr", "obs_stream", "bench_scale", "serve"}
        obs = payload["results"]["obs_stream"]
        assert obs["samples"] > 0
        assert obs["sampled_rate_ratio"] > 0
        tier = payload["results"]["tiered_persist"]
        assert tier["restore_fallback_correct"]
        assert tier["sim_safety_overhead"] >= 1.0
        scale = payload["results"]["bench_scale"]
        assert scale["completed"]
        assert scale["parallel_trace_identical"]
        assert scale["events_speedup_vs_des_acr"] > 0
        serve = payload["results"]["serve"]
        assert serve["all_hits"]
        assert serve["cache_hit_rps"] > 0

    def test_run_all_quick_covers_every_benchmark(self):
        results = run_all(quick=True)
        assert results["campaign"]["summaries_identical"]
