"""Unit tests for the perf regression gate (benchmarks/perf/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "benchmarks" / "perf" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _results(pack=2.0, pack_into=6.0, incremental=15.0, identical=True,
             dispatch=3.2, periodic=4.0, fastpath=1.5, striped=1.7,
             parallel=2.5, cpu_count=4, scale_speedup=4.0,
             scale_completed=True, trace_identical=True,
             scale_parallel=1.8, scale_cpu_count=4,
             safety_overhead=1.6, fallback_correct=True,
             obs_ratio=0.99, serve_rps=1500.0, serve_all_hits=True,
             serve_cpu_count=4, modes_identical=True, coordinated_ok=True,
             xl_completed=True, shm_speedup=1.8):
    return {
        "pack": {
            "pack_speedup_vs_legacy": pack,
            "pack_into_speedup_vs_legacy": pack_into,
            "pack_into_gib_per_s": 4.0,
        },
        "incremental_checksum": {"incremental_speedup": incremental},
        "fletcher": {"fletcher64_gib_per_s": 8.0,
                     "striped_speedup_vs_seed": striped},
        "tiered_persist": {"sim_safety_overhead": safety_overhead,
                           "restore_fallback_correct": fallback_correct,
                           "persist_gib_per_s": 0.6,
                           "sha_share_of_persist": 0.55},
        "campaign": {"summaries_identical": identical,
                     "parallel_speedup": parallel,
                     "cpu_count": cpu_count},
        "des_dispatch": {"dispatch_speedup_vs_legacy": dispatch,
                         "events_per_s": 8.0e5},
        "des_periodic": {"periodic_speedup_vs_resched": periodic},
        "des_messages": {"fastpath_speedup": fastpath},
        "des_acr": {"events_per_s": 4.0e4,
                    "legacy_equivalent_events_per_s": 1.1e5},
        "obs_stream": {"sampled_rate_ratio": obs_ratio,
                       "sampled_events_per_s": 3.9e4,
                       "unsampled_events_per_s": 4.0e4},
        "bench_scale": {"events_speedup_vs_des_acr": scale_speedup,
                        "completed": scale_completed,
                        "parallel_trace_identical": trace_identical,
                        "parallel_speedup": scale_parallel,
                        "cpu_count": scale_cpu_count,
                        "modes_trace_identical": modes_identical,
                        "coordinated_parallel_ok": coordinated_ok,
                        "xl_completed": xl_completed,
                        "shm_speedup_vs_copy": shm_speedup,
                        "shm_events_per_s": 6.5e4,
                        "copy_events_per_s": 5.0e4,
                        "max_worker_rss_mib": 450.0,
                        "events_per_s": 5.0e4,
                        "legacy_equivalent_events_per_s": 4.4e5,
                        "node_iterations_per_s": 1.7e4,
                        "peak_rss_mib": 860.0},
        "serve": {"cache_hit_rps": serve_rps,
                  "all_hits": serve_all_hits,
                  "cpu_count": serve_cpu_count,
                  "p50_ms": 0.6,
                  "p99_ms": 1.4},
    }


class TestCompare:
    def test_identical_runs_pass(self):
        rows, failures = compare_bench.compare(_results(), _results(), 0.30)
        assert failures == []
        assert all(r[-1] in ("ok", "info") for r in rows)

    def test_drop_within_tolerance_passes(self):
        fresh = _results(pack=2.0 * 0.75)  # -25% on a 30% gate
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert failures == []

    def test_drop_beyond_tolerance_fails(self):
        fresh = _results(pack=2.0 * 0.5)  # -50% on a 30% gate
        rows, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert len(failures) == 1
        assert "pack.pack_speedup_vs_legacy" in failures[0]
        assert any(r[-1] == "REGRESSION" for r in rows)

    def test_improvement_never_fails(self):
        fresh = _results(pack=20.0, pack_into=60.0, incremental=150.0)
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert failures == []

    def test_missing_gated_metric_fails(self):
        fresh = _results()
        del fresh["incremental_checksum"]["incremental_speedup"]
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert any("missing" in f for f in failures)

    def test_false_flag_fails(self):
        fresh = _results(identical=False)
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert any("summaries_identical" in f for f in failures)

    def test_informational_metrics_never_fail(self):
        fresh = _results()
        fresh["fletcher"]["fletcher64_gib_per_s"] = 0.001
        fresh["des_acr"]["events_per_s"] = 1.0
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert failures == []

    def test_des_dispatch_regression_fails(self):
        fresh = _results(dispatch=3.2 * 0.5)  # -50% on a 30% gate
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert any("des_dispatch.dispatch_speedup_vs_legacy" in f
                   for f in failures)

    def test_parallel_speedup_gated_on_multicore(self):
        fresh = _results(parallel=2.5 * 0.5)  # -50% on a 30% gate
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert any("campaign.parallel_speedup" in f for f in failures)

    def test_parallel_speedup_skipped_on_single_cpu(self):
        # Same regression, but either run saw one core: the clamp makes
        # both campaign paths serial, so the ratio is noise — never gated.
        for base_cpus, fresh_cpus in ((1, 1), (1, 4), (4, 1)):
            base = _results(cpu_count=base_cpus, scale_cpu_count=base_cpus)
            fresh = _results(parallel=0.4, cpu_count=fresh_cpus,
                             scale_parallel=0.4,
                             scale_cpu_count=fresh_cpus)
            rows, failures = compare_bench.compare(base, fresh, 0.30)
            assert failures == []
            for metric in ("campaign.parallel_speedup",
                           "bench_scale.parallel_speedup"):
                assert any("skipped" in str(r[-1]) for r in rows
                           if r[0] == metric)

    def test_scale_speedup_regression_fails(self):
        fresh = _results(scale_speedup=4.0 * 0.5)  # -50% on a 30% gate
        _, failures = compare_bench.compare(_results(), fresh, 0.30)
        assert any("bench_scale.events_speedup_vs_des_acr" in f
                   for f in failures)

    def test_scale_speedup_absolute_floor(self):
        # Within tolerance of a weak baseline but below the acceptance bar:
        # the floor is absolute, not relative.
        base = _results(scale_speedup=3.1)
        fresh = _results(scale_speedup=2.5)
        _, failures = compare_bench.compare(base, fresh, 0.30)
        assert any("below required floor 3.0" in f for f in failures)
        # At or above the floor (and within tolerance) passes.
        _, failures = compare_bench.compare(base, _results(scale_speedup=3.0),
                                            0.30)
        assert failures == []

    def test_tiered_persist_safety_overhead_floor(self):
        # A modeled atomic write cheaper than the unsafe one means the tier
        # cost model broke — gated absolutely, not just vs the baseline.
        fresh = _results(safety_overhead=0.9)
        _, failures = compare_bench.compare(
            _results(safety_overhead=0.95), fresh, 0.30)
        assert any("below required floor 1.0" in f for f in failures)

    def test_obs_stream_sampling_overhead_floor(self):
        # Sampling at the default cadence costing >5% of engine throughput
        # is a regression regardless of what the baseline machine measured.
        _, failures = compare_bench.compare(
            _results(), _results(obs_ratio=0.90), 0.30)
        assert any("obs_stream.sampled_rate_ratio" in f
                   and "below required floor 0.95" in f for f in failures)
        _, failures = compare_bench.compare(
            _results(), _results(obs_ratio=0.96), 0.30)
        assert failures == []

    def test_tiered_persist_fallback_flag_gated(self):
        _, failures = compare_bench.compare(
            _results(), _results(fallback_correct=False), 0.30)
        assert any("tiered_persist.restore_fallback_correct" in f
                   for f in failures)

    def test_serve_rps_floor_on_multicore(self):
        # Within tolerance of a weak baseline but below the absolute bar:
        # the served cache-hit path must clear 1000 req/s outright.
        _, failures = compare_bench.compare(
            _results(serve_rps=1100.0), _results(serve_rps=900.0), 0.30)
        assert any("serve.cache_hit_rps" in f
                   and "below required floor 1000" in f for f in failures)
        _, failures = compare_bench.compare(
            _results(), _results(serve_rps=1000.0), 0.30)
        assert failures == []

    def test_serve_rps_floor_skipped_on_single_cpu(self):
        # One core: client and server contend for the same CPU, so the
        # rate is scheduler noise — reported, never gated.
        rows, failures = compare_bench.compare(
            _results(), _results(serve_rps=400.0, serve_cpu_count=1), 0.30)
        assert failures == []
        assert any("skipped" in str(r[-1]) for r in rows
                   if str(r[0]).startswith("serve.cache_hit_rps"))

    def test_serve_all_hits_flag_gated(self):
        _, failures = compare_bench.compare(
            _results(), _results(serve_all_hits=False), 0.30)
        assert any("serve.all_hits" in f for f in failures)

    def test_scale_flags_gated(self):
        for kwargs, name in (
            ({"scale_completed": False}, "bench_scale.completed"),
            ({"trace_identical": False}, "bench_scale.parallel_trace_identical"),
            ({"modes_identical": False}, "bench_scale.modes_trace_identical"),
            ({"coordinated_ok": False}, "bench_scale.coordinated_parallel_ok"),
            ({"xl_completed": False}, "bench_scale.xl_completed"),
        ):
            _, failures = compare_bench.compare(
                _results(), _results(**kwargs), 0.30)
            assert any(name in f for f in failures)

    def test_shm_speedup_floor_on_multicore(self):
        # Within tolerance of a weak baseline but below the acceptance bar:
        # the shm plane must beat the copy-based plane by 1.3× outright.
        _, failures = compare_bench.compare(
            _results(shm_speedup=1.4), _results(shm_speedup=1.1), 0.30)
        assert any("bench_scale.shm_speedup_vs_copy" in f
                   and "below required floor 1.3" in f for f in failures)
        _, failures = compare_bench.compare(
            _results(shm_speedup=1.4), _results(shm_speedup=1.3), 0.30)
        assert failures == []

    def test_shm_speedup_floor_skipped_on_single_cpu(self):
        # One core: both planes serialize behind the same CPU, so the
        # loop-wall ratio is scheduler noise — reported, never gated.
        rows, failures = compare_bench.compare(
            _results(), _results(shm_speedup=0.9, scale_cpu_count=1), 0.30)
        assert failures == []
        assert any("skipped" in str(r[-1]) for r in rows
                   if str(r[0]).startswith("bench_scale.shm_speedup_vs_copy"))


class TestMain:
    def _write(self, path, results):
        path.write_text(json.dumps({"results": results}))
        return path

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _results())
        new = self._write(tmp_path / "new.json", _results())
        assert compare_bench.main(
            ["--baseline", str(base), "--new", str(new)]) == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _results())
        new = self._write(tmp_path / "new.json", _results(incremental=1.0))
        assert compare_bench.main(
            ["--baseline", str(base), "--new", str(new)]) == 1
        assert "regression" in capsys.readouterr().err

    def test_gated_metrics_exist_in_committed_baseline(self):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_checkpoint.json").read_text())["results"]
        minimums = tuple((section, metric) for section, metric, _
                         in compare_bench.GATED_MINIMUMS)
        for section, metric in (compare_bench.GATED_RATIOS
                                + compare_bench.GATED_FLAGS + minimums):
            assert compare_bench._lookup(baseline, section, metric) is not None, (
                f"committed baseline lacks gated metric {section}.{metric}"
            )
