"""CI scale smoke: the trimmed paper-scale configuration inside a budget.

``pytest -m scale_smoke`` is the CI job's selector; it also picks up the
determinism oracles in ``tests/runtime/test_scale_equivalence.py`` and
``tests/harness/test_parallel.py`` (marked there).  This file runs the
quick ``bench_scale`` configuration — a 2×8192-node replica pair end to
end plus the partitioned-mode determinism check — and enforces a
wall-clock budget so the scale path can never quietly regress into
being unrunnable.
"""

from time import perf_counter

import pytest

from benchmarks.perf.bench_scale import run_all_scale

pytestmark = pytest.mark.scale_smoke

#: Generous multiple of the ~5 s the quick configuration takes on one CPU;
#: blowing this means the scale path got orders-of-magnitude slower, not
#: that the runner was busy.
WALL_BUDGET_S = 120.0


class TestScaleSmoke:
    def test_quick_scale_run_completes_within_budget(self):
        t0 = perf_counter()
        results = run_all_scale(quick=True, reference_events_per_s=None)
        elapsed = perf_counter() - t0
        scale = results["bench_scale"]
        assert scale["completed"]
        assert scale["nodes"] == 16384
        assert scale["quick"] is True
        assert scale["legacy_equivalent_events_per_s"] > scale["events_per_s"]
        assert scale["parallel_trace_identical"]
        parallel = scale["parallel"]
        assert parallel["completed"]
        assert parallel["effective_workers"] <= parallel["cpu_count"]
        assert elapsed < WALL_BUDGET_S, (
            f"scale smoke took {elapsed:.1f}s (> {WALL_BUDGET_S}s budget)")
