"""CI scale smoke: the trimmed paper-scale configuration inside a budget.

``pytest -m scale_smoke`` is the CI job's selector; it also picks up the
determinism oracles in ``tests/runtime/test_scale_equivalence.py`` and
``tests/harness/test_parallel.py`` (marked there).  This file runs the
quick ``bench_scale`` configuration — a 2×8192-node replica pair end to
end, the partitioned-mode determinism checks, and the shm-vs-pipes
window-stress comparison on a trimmed 2×8192-node (16Ki) scenario — and
enforces a wall-clock budget so the scale path can never quietly regress
into being unrunnable.  The per-window barrier-overhead series is written
to ``scale_smoke_barrier_series.json`` so the CI job can upload it as an
artifact when the lane fails.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from benchmarks.perf.bench_scale import run_all_scale
from repro.harness.parallel import ParallelScenario, run_parallel

pytestmark = pytest.mark.scale_smoke

#: Generous multiple of the ~10 s the quick configuration takes on one CPU;
#: blowing this means the scale path got orders-of-magnitude slower, not
#: that the runner was busy.
WALL_BUDGET_S = 120.0

#: Where the barrier-overhead diagnostics land (uploaded by CI on failure).
ARTIFACT_PATH = Path(
    os.environ.get("SCALE_SMOKE_ARTIFACT", "scale_smoke_barrier_series.json"))


class TestScaleSmoke:
    def test_quick_scale_run_completes_within_budget(self):
        t0 = perf_counter()
        results = run_all_scale(quick=True, reference_events_per_s=None)
        elapsed = perf_counter() - t0
        scale = results["bench_scale"]
        assert scale["completed"]
        assert scale["nodes"] == 16384
        assert scale["quick"] is True
        assert scale["legacy_equivalent_events_per_s"] > scale["events_per_s"]
        assert scale["parallel_trace_identical"]
        assert scale["modes_trace_identical"]
        assert scale["coordinated_parallel_ok"]
        parallel = scale["parallel"]
        assert parallel["completed"]
        assert parallel["effective_workers"] <= parallel["cpu_count"]
        stress = scale["window_stress"]
        assert stress["completed"]
        assert stress["nodes"] == 16384
        assert stress["windows"] > 100, "window-stress cadence collapsed"
        assert stress["shm_speedup_vs_copy"] > 0
        assert stress["max_worker_rss_mib"] > 0
        assert elapsed < WALL_BUDGET_S, (
            f"scale smoke took {elapsed:.1f}s (> {WALL_BUDGET_S}s budget)")

    def test_shm_plane_barrier_series_artifact(self):
        """Run the shm plane on the trimmed scenario and persist its
        per-window barrier-overhead series.  The file is written on success
        too (cheap), so a *later* failure in this lane still has the most
        recent series to upload."""
        scenario = ParallelScenario(
            nodes_per_replica=8192, total_iterations=1,
            iteration_seconds=5.0, horizon=6.0,
            coordinated_interval=0.05, scheme="strong", seed=5)
        report = run_parallel(scenario, partitions=2, workers=2,
                              force_processes=True, shared_memory=True)
        assert report.data_plane == "shm"
        assert report.completed
        assert report.wall_s > 0
        assert report.window_barrier_s is not None
        assert len(report.window_barrier_s) == report.windows
        ARTIFACT_PATH.write_text(json.dumps({
            "nodes": 2 * scenario.nodes_per_replica,
            "windows": report.windows,
            "consensus_rounds": report.consensus_rounds,
            "loop_wall_s": report.loop_wall_s,
            "barrier_wait_s": report.barrier_wait_s,
            "window_barrier_s": report.window_barrier_s,
            "worker_peak_rss_mib": report.worker_peak_rss_mib,
        }, indent=1))
