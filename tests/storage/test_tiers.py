"""TierSpec cost model, protocols, and the per-level interval planner."""

import pytest

from repro.model.multilevel import plan_tier_intervals, tier_interval
from repro.storage.tiers import (
    NODE_LOCAL_TIER,
    SHARED_FS_TIER,
    TierSpec,
    WriteProtocol,
    default_tiers,
)
from repro.util.errors import ConfigurationError

MIB = 1024 * 1024


class TestSpecValidation:
    def test_level_must_be_2_or_3(self):
        with pytest.raises(ConfigurationError):
            TierSpec(level=1, name="x", write_latency=0.0,
                     write_bandwidth=1e9, read_latency=0.0,
                     read_bandwidth=1e9)

    def test_bandwidths_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NODE_LOCAL_TIER.__class__(**{
                **NODE_LOCAL_TIER.__dict__, "write_bandwidth": 0.0})

    def test_failure_share_bounds(self):
        with pytest.raises(ConfigurationError):
            TierSpec(level=2, name="x", write_latency=0.0,
                     write_bandwidth=1e9, read_latency=0.0,
                     read_bandwidth=1e9, failure_share=0.0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NODE_LOCAL_TIER.with_interval(0.0)


class TestCostModel:
    def test_atomic_write_costs_more_than_unsafe(self):
        atomic = NODE_LOCAL_TIER.with_protocol(WriteProtocol.ATOMIC_DIRSYNC)
        unsafe = NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE)
        assert (atomic.write_time(64 * MIB, 8)
                > unsafe.write_time(64 * MIB, 8))

    def test_atomic_pays_one_fsync_per_shard_plus_dirsync(self):
        atomic = NODE_LOCAL_TIER.with_protocol(WriteProtocol.ATOMIC_DIRSYNC)
        unsafe = NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE)
        gap = atomic.write_time(MIB, 8) - unsafe.write_time(MIB, 8)
        assert gap == pytest.approx(NODE_LOCAL_TIER.fsync_time * 9)

    def test_safety_overhead_at_least_one(self):
        for spec in default_tiers():
            assert spec.safety_overhead(64 * MIB, 8) >= 1.0

    def test_read_time_scales_with_bytes(self):
        assert (SHARED_FS_TIER.read_time(64 * MIB)
                > SHARED_FS_TIER.read_time(MIB))

    def test_default_tiers_are_levels_2_and_3(self):
        t2, t3 = default_tiers()
        assert (t2.level, t3.level) == (2, 3)
        t2u, _ = default_tiers(protocol=WriteProtocol.UNSAFE)
        assert t2u.protocol is WriteProtocol.UNSAFE


class TestIntervalPlanner:
    def test_pinned_interval_wins(self):
        spec = NODE_LOCAL_TIER.with_interval(42.0)
        assert tier_interval(spec, 64 * MIB, 8) == 42.0

    def test_daly_interval_grows_with_mtbf(self):
        fast = tier_interval(NODE_LOCAL_TIER, 64 * MIB, 8)
        slow = tier_interval(SHARED_FS_TIER, 64 * MIB, 8)
        # level 3 has both a higher delta and a longer assumed MTBF
        assert slow > fast > 0.0

    def test_plan_orders_by_level_and_bounds_overhead(self):
        plans = plan_tier_intervals(default_tiers(), 64 * MIB, 8)
        assert [p.level for p in plans] == [2, 3]
        for p in plans:
            assert 0.0 < p.overhead < 0.5
            assert p.interval > p.delta
