"""Kill-point harness: interrupt the group write at every fault point.

The core recovery guarantee under test: :meth:`DurableHierarchy.restore`
never hands back a torn or rotted generation — the SHA-256 guard rejects
it and the scan falls back to the next intact copy (older generation,
deeper tier) or reports a miss.
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointGeneration
from repro.pup.puper import PackedState
from repro.storage.hierarchy import DurableHierarchy
from repro.storage.tiers import (
    NODE_LOCAL_TIER,
    SHARED_FS_TIER,
    WriteProtocol,
)

NRANKS = 4


def _gen(iteration, nranks=NRANKS, nbytes=64):
    """One complete generation with non-zero, per-rank-distinct payloads
    (a tear zeroes a buffer tail, so payloads must not already be zero)."""
    shards = {}
    for rank in range(nranks):
        buf = (np.arange(nbytes, dtype=np.uint8) % 200) + 1 + rank
        shards[rank] = PackedState(buf)
    return CheckpointGeneration(iteration=iteration, shards=shards,
                                wallclock=float(iteration))


def _payloads(gen):
    return {r: bytes(s.buffer) for r, s in sorted(gen.shards.items())}


@pytest.mark.storage_smoke
class TestKillPointMatrix:
    """Crash the group write at shard k, for every k and both protocols."""

    @pytest.mark.parametrize("fault_point", range(NRANKS))
    @pytest.mark.parametrize(
        "protocol", [WriteProtocol.UNSAFE, WriteProtocol.ATOMIC_DIRSYNC])
    def test_restore_never_serves_the_interrupted_write(
            self, protocol, fault_point):
        hier = DurableHierarchy(
            [NODE_LOCAL_TIER.with_protocol(protocol)], NRANKS)
        intact = _gen(10)
        hier.persist_now(intact, now=0.0)
        hier.stage(2, _gen(20), now=5.0)
        hier.abort_inflight(5.0, fault_point=fault_point)

        result = hier.restore(now=6.0)
        assert result is not None
        assert result.generation.iteration == 10
        assert _payloads(result.generation) == _payloads(intact)

        tier = hier.tiers[2]
        if protocol is WriteProtocol.UNSAFE:
            # The torn landing is present but rejected by the guard.
            assert tier.counters["torn_writes"] == 1
            assert tier.counters["rejected_torn"] >= 1
            assert result.fellback
        else:
            # Atomic protocol: nothing landed, the old copy is the newest.
            assert tier.counters["aborted_writes"] == 1
            assert len(tier.generations) == 1
            assert not result.fellback

    def test_crash_with_no_prior_generation_is_a_miss(self):
        hier = DurableHierarchy(
            [NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE)], NRANKS)
        hier.stage(2, _gen(10), now=0.0)
        hier.abort_inflight(0.0, fault_point=1)
        assert hier.restore(now=1.0) is None
        assert hier.restore_misses == 1


class TestArmedTornWrites:
    """The chaos injector arms a tear; the *next* persist consumes it."""

    def test_unsafe_lands_torn_and_falls_back(self):
        hier = DurableHierarchy(
            [NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE)], NRANKS)
        hier.persist_now(_gen(10), now=0.0)
        hier.arm_torn_write(2)
        hier.persist_now(_gen(20), now=5.0)
        result = hier.restore(now=6.0)
        assert result is not None
        assert result.generation.iteration == 10
        assert result.fellback
        assert hier.tiers[2].counters["torn_writes"] == 1

    def test_atomic_aborts_cleanly(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)
        hier.persist_now(_gen(10), now=0.0)
        hier.arm_torn_write(2)
        hier.persist_now(_gen(20), now=5.0)
        tier = hier.tiers[2]
        assert tier.counters["aborted_writes"] == 1
        assert [g.iteration for g in tier.generations] == [10]
        # The fault is consumed: the write after it lands fine.
        hier.persist_now(_gen(30), now=9.0)
        assert hier.restore(now=10.0).generation.iteration == 30


class TestBitRot:
    def test_rot_falls_back_to_older_generation(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)
        hier.persist_now(_gen(10), now=0.0)
        hier.persist_now(_gen(20), now=5.0)
        assert hier.inject_bit_rot(2, now=6.0)
        result = hier.restore(now=7.0)
        assert result.generation.iteration == 10
        assert result.fellback
        assert hier.tiers[2].counters["rejected_rot"] == 1

    def test_rot_falls_back_to_deeper_tier(self):
        hier = DurableHierarchy(
            [NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE),
             SHARED_FS_TIER],
            NRANKS)
        hier.persist_now(_gen(10), now=0.0)  # lands on both levels
        # Fill level 2's retention window (keep_generations=2) with torn
        # landings, then verify the scan walks down to the intact level-3
        # copy of the original generation.
        for iteration, t in [(20, 5.0), (30, 9.0)]:
            hier.stage(2, _gen(iteration), now=t)
            hier.abort_inflight(t, fault_point=0)
        assert hier.inject_bit_rot(2, now=10.0)
        result = hier.restore(now=11.0)
        assert result.level == 3
        assert result.generation.iteration == 10
        assert result.fellback
        assert hier.fallbacks == 1

    def test_rot_on_empty_tier_is_a_noop(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)
        assert not hier.inject_bit_rot(2, now=0.0)
        assert hier.tiers[2].counters["rot_injected"] == 0


class TestWriteSpikes:
    def test_spike_multiplies_one_write_only(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)
        base = hier.stage(2, _gen(10), now=0.0)
        hier.complete_inflight(0.0)
        hier.arm_write_spike(2, factor=8.0)
        spiked = hier.stage(2, _gen(20), now=5.0)
        hier.complete_inflight(5.0)
        assert spiked == pytest.approx(8.0 * base)
        again = hier.stage(2, _gen(30), now=9.0)
        hier.complete_inflight(9.0)
        assert again == pytest.approx(base)
        assert hier.tiers[2].counters["write_spikes"] == 1


class TestRetention:
    def test_keep_generations_trims_oldest(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)  # keeps 2
        for i, t in [(10, 0.0), (20, 5.0), (30, 9.0)]:
            hier.persist_now(_gen(i), now=t)
        assert [g.iteration for g in hier.tiers[2].generations] == [20, 30]

    def test_counters_are_flat_and_prefixed(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER, SHARED_FS_TIER], NRANKS)
        hier.persist_now(_gen(10), now=0.0)
        counters = hier.counters()
        assert counters["tier2.persists"] == 1.0
        assert counters["tier3.persists"] == 1.0
        assert counters["restore_misses"] == 0.0
        assert counters["fallbacks"] == 0.0

    def test_restored_state_is_a_copy(self):
        hier = DurableHierarchy([NODE_LOCAL_TIER], NRANKS)
        hier.persist_now(_gen(10), now=0.0)
        first = hier.restore(now=1.0).generation
        first.shards[0].buffer[:] = 0  # caller mutates its copy
        second = hier.restore(now=2.0).generation
        assert bytes(second.shards[0].buffer) != bytes(first.shards[0].buffer)
