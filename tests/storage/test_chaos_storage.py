"""Chaos fuzzing of the durable tiers: storage faults under every scheme.

The fuzzer's storage axes (seed//12 enables tiers, seed//24 picks the
unsafe protocol) ride on top of the base schedule draws, so seeds with
storage disabled produce bitwise-identical schedules to the pre-tier
fuzzer.  The monitored runs assert the recovery invariants hold while
torn writes, bit rot, and write spikes land mid-flight.
"""

import pytest

from repro.chaos.fuzzer import STORAGE_MODES, ChaosSchedule, fuzz_schedule
from repro.chaos.runner import run_schedule
from repro.faults.injector import STORAGE_FAULT_KINDS


class TestFuzzerAxes:
    def test_storage_axis_follows_seed_arithmetic(self):
        for seed in range(48):
            sched = fuzz_schedule(seed)
            assert sched.storage_tiers == bool((seed // 12) % 2)
            expected = "unsafe" if (seed // 24) % 2 else "atomic-dirsync"
            assert sched.storage_protocol == expected

    def test_storage_seeds_draw_storage_events(self):
        sched = fuzz_schedule(12)
        assert sched.storage_tiers
        storage_events = [e for e in sched.events
                          if e.kind in STORAGE_FAULT_KINDS]
        assert storage_events
        assert all(e.level in (2, 3) for e in storage_events)

    def test_non_storage_seeds_draw_none(self):
        for seed in range(12):
            sched = fuzz_schedule(seed)
            assert not sched.storage_tiers
            assert not [e for e in sched.events
                        if e.kind in STORAGE_FAULT_KINDS]

    def test_all_storage_modes_reachable(self):
        seen = set()
        for seed in range(12, 24):
            for e in fuzz_schedule(seed).events:
                if e.kind in STORAGE_FAULT_KINDS:
                    seen.add(e.kind)
        for seed in range(36, 48):
            for e in fuzz_schedule(seed).events:
                if e.kind in STORAGE_FAULT_KINDS:
                    seen.add(e.kind)
        assert len(seen) >= 2  # the draw spans the mode table
        assert len(STORAGE_MODES) == 3

    def test_schedule_round_trips_storage_fields(self):
        sched = fuzz_schedule(36)
        back = ChaosSchedule.from_dict(sched.to_dict())
        assert back.storage_tiers == sched.storage_tiers
        assert back.storage_protocol == sched.storage_protocol
        assert [e.level for e in back.events] == [e.level for e in sched.events]
        assert back.to_dict() == sched.to_dict()

    def test_legacy_schedule_dict_loads_without_storage_fields(self):
        payload = fuzz_schedule(3).to_dict()
        payload.pop("storage_tiers")
        payload.pop("storage_protocol")
        for e in payload["events"]:
            e.pop("level")
        back = ChaosSchedule.from_dict(payload)
        assert not back.storage_tiers
        assert back.storage_protocol == "atomic-dirsync"

    def test_config_builds_tiers_only_when_enabled(self):
        assert fuzz_schedule(0).config().storage_tiers == ()
        tiers = fuzz_schedule(36).config().storage_tiers
        assert [t.level for t in tiers] == [2, 3]
        assert all(str(t.protocol) == "unsafe" for t in tiers)


@pytest.mark.storage_smoke
class TestMonitoredStorageRuns:
    """Storage-fault seeds under the full invariant monitor.

    Seeds 12-17 run the atomic-dirsync protocol, 36-41 the unsafe one —
    both must satisfy every invariant, including storage-monotone and
    storage-integrity (a restore never hands back torn/rotted state).
    """

    @pytest.mark.parametrize("seed", [12, 13, 14, 15, 16, 17,
                                      36, 37, 38, 39, 40, 41])
    def test_storage_seed_green(self, seed):
        sched = fuzz_schedule(seed)
        assert sched.storage_tiers
        outcome = run_schedule(sched)
        assert outcome.ok, (outcome.invariant, outcome.violation)
        assert outcome.checks_performed > 0

    def test_storage_outcome_is_deterministic(self):
        a = run_schedule(fuzz_schedule(12))
        b = run_schedule(fuzz_schedule(12))
        assert (a.ok, a.completed, a.aborted_reason) == \
            (b.ok, b.completed, b.aborted_reason)
