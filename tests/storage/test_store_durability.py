"""Crash-durability of the on-disk ResultStore.

Covers the three durability bugs fixed alongside the tier work: fsync
ordering in ``put`` (data before rename, directory entry after), the
single-buffer journal append with torn-tail tolerance, and quarantine /
temp-file sweeping for interrupted or corrupt writes.
"""

import json
import os

import pytest

from repro.store import KIND_RUN_REPORT, ResultStore, code_fingerprint

pytestmark = pytest.mark.storage_smoke


def _material(seed=1):
    return {
        "kind": KIND_RUN_REPORT,
        "app": "synthetic",
        "seed": seed,
        "config": {"horizon": 10.0},
        "code": code_fingerprint(),
    }


class Crash(RuntimeError):
    """Stands in for the process dying mid-write."""


def _crash_on(monkeypatch, name, call_index=1):
    """Make the ``call_index``-th call to ``os.<name>`` raise :class:`Crash`."""
    real = getattr(os, name)
    calls = {"n": 0}

    def wrapper(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == call_index:
            raise Crash(f"simulated crash in os.{name}")
        return real(*args, **kwargs)

    monkeypatch.setattr(os, name, wrapper)


class TestFsyncOrdering:
    def test_data_is_synced_before_the_rename(self, tmp_path, monkeypatch):
        calls = []
        real_fsync, real_replace = os.fsync, os.replace

        def rec_fsync(fd):
            calls.append("fsync")
            return real_fsync(fd)

        def rec_replace(src, dst):
            calls.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", rec_fsync)
        monkeypatch.setattr(os, "replace", rec_replace)
        ResultStore(tmp_path).put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)

        assert "replace" in calls
        rename_at = calls.index("replace")
        # The object's bytes reach the platter before the rename publishes
        # them; the directory entry and the journal line are synced after.
        assert calls[:rename_at].count("fsync") >= 1
        assert calls[rename_at + 1:].count("fsync") >= 2


class TestCrashKillPoints:
    """Interrupt ``put`` at each step; the store must stay sound."""

    @pytest.mark.parametrize("os_call, index, tmp_left", [
        ("write", 1, True),     # crash writing the temp file
        ("fsync", 1, True),     # crash syncing the temp file
        ("replace", 1, True),   # crash before the rename publishes
        ("write", 2, False),    # crash appending the journal line
    ])
    def test_interrupted_put_leaves_no_torn_record(
            self, tmp_path, monkeypatch, os_call, index, tmp_left):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {"v": 1}, kind=KIND_RUN_REPORT)
        with pytest.raises(Crash):
            _crash_on(monkeypatch, os_call, index)
            store.put(_material(seed=2), {"v": 2}, kind=KIND_RUN_REPORT)
        monkeypatch.undo()

        # The record written before the crash is untouched.
        assert store.get(_material(seed=1)) == {"v": 1}
        if tmp_left:
            # The interrupted write never published: a miss, plus an
            # orphaned temp file that verify flags and gc sweeps.
            assert store.get(_material(seed=2)) is None
            assert any("orphaned temp file" in p for p in store.verify())
            result = store.gc()
            assert result.tmp_removed == 1
            assert not list(tmp_path.rglob("*.tmp.*"))
            assert store.verify() == []
        else:
            # Crash after the rename: the object is durable even though
            # its journal line is lost.
            assert store.get(_material(seed=2)) == {"v": 2}
            assert store.verify() == []

    def test_put_succeeds_after_an_interrupted_attempt(
            self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        with pytest.raises(Crash):
            _crash_on(monkeypatch, "replace", 1)
            store.put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)
        monkeypatch.undo()
        store.put(_material(), {"v": 2}, kind=KIND_RUN_REPORT)
        assert store.get(_material()) == {"v": 2}


class TestJournal:
    def test_torn_trailing_line_is_tolerated_and_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2), {}, kind=KIND_RUN_REPORT)
        with open(store.index_path, "ab") as fh:
            fh.write(b'{"key": "cut-off-mid-app')  # no trailing newline
        entries, problems = store.journal_entries()
        assert [e["seed"] for e in entries] == [1, 2]
        assert len(problems) == 1
        assert "torn trailing line" in problems[0]
        assert any("torn trailing line" in p for p in store.verify())

    def test_undecodable_mid_file_line_is_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2), {}, kind=KIND_RUN_REPORT)
        lines = store.index_path.read_text().splitlines()
        lines.insert(1, "%% not json %%")
        store.index_path.write_text("\n".join(lines) + "\n")
        entries, problems = store.journal_entries()
        assert len(entries) == 2
        assert any("undecodable line 2" in p for p in problems)

    def test_missing_journal_reads_empty(self, tmp_path):
        entries, problems = ResultStore(tmp_path).journal_entries()
        assert entries == [] and problems == []


class TestQuarantine:
    def test_corrupt_object_is_quarantined_on_read(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)
        store.object_path(key).write_text("{not json")
        assert store.get(_material()) is None
        # Moved aside, so the address is writable again instead of the
        # corrupt file shadowing it forever.
        assert not store.object_path(key).exists()
        assert (store.quarantine_dir / f"{key}.json").is_file()
        assert any("quarantine" in p for p in store.verify())
        store.put(_material(), {"v": 2}, kind=KIND_RUN_REPORT)
        assert store.get(_material()) == {"v": 2}

    def test_wrong_format_is_a_miss_but_not_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)
        path = store.object_path(key)
        record = json.loads(path.read_text())
        record["format"] = 99
        path.write_text(json.dumps(record))
        assert store.get(_material()) is None
        assert path.exists()  # decodable, just foreign: gc's business

    def test_entries_skip_and_quarantine_corrupt_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        key = store.put(_material(seed=2), {}, kind=KIND_RUN_REPORT)
        store.object_path(key).write_text("junk")
        listed = store.entries()
        assert [e.seed for e in listed] == [1]
        assert (store.quarantine_dir / f"{key}.json").is_file()


class TestTmpSweep:
    def test_gc_sweeps_orphaned_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(), {}, kind=KIND_RUN_REPORT)
        orphan = store.objects_dir / "ab" / "deadbeef.json.tmp.12345"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("partial write")
        assert any("orphaned temp file" in p for p in store.verify())
        result = store.gc()
        assert result.tmp_removed == 1
        assert result.kept == 1
        assert not orphan.exists()
        assert store.verify() == []
