"""Durable tiers wired through the full DES framework, end to end."""

import pytest

from repro.core.config import ACRConfig
from repro.core.events import TimelineKind
from repro.core.framework import ACR
from repro.faults.injector import FaultEvent, FaultKind, InjectionPlan
from repro.harness.experiment import run_acr_experiment
from repro.obs.metrics import MetricsRegistry
from repro.storage.tiers import default_tiers
from repro.store.serialization import report_from_dict, report_to_dict

TIERS = default_tiers(tier2_interval=2.0, tier3_interval=4.0)


def _tiered(**kw):
    defaults = dict(
        nodes_per_replica=2,
        total_iterations=30,
        checkpoint_interval=1.0,
        horizon=200.0,
        seed=3,
        storage_tiers=TIERS,
    )
    defaults.update(kw)
    return run_acr_experiment(**defaults)


class TestFailureFree:
    def test_storage_disabled_by_default(self):
        res = run_acr_experiment(nodes_per_replica=2, total_iterations=10,
                                 horizon=50.0)
        assert res.acr.storage is None
        assert res.report.storage_counters == {}
        assert res.acr.timeline.of_kind(TimelineKind.TIER_PERSIST) == []

    def test_tiers_persist_on_their_intervals(self):
        res = _tiered()
        assert res.ok
        counters = res.report.storage_counters
        assert counters["tier2.persists"] >= 1
        assert counters["tier3.persists"] >= 1
        # Level 2 runs on the shorter period, so it persists at least as often.
        assert counters["tier2.persists"] >= counters["tier3.persists"]
        events = res.acr.timeline.of_kind(TimelineKind.TIER_PERSIST)
        assert events
        assert all(e.detail["outcome"] == "ok" for e in events)

    def test_persist_time_lands_in_the_phase_breakdown(self):
        res = _tiered()
        rep = res.report
        assert rep.phase_times.get("checkpoint.tier2-persist", 0.0) > 0.0
        assert rep.phase_time_sum == pytest.approx(
            rep.checkpoint_time + rep.recovery_time)

    def test_async_mode_persists_in_the_background(self):
        config = ACRConfig(checkpoint_interval=1.0, total_iterations=30,
                           async_checkpointing=True, seed=3,
                           storage_tiers=TIERS)
        acr = ACR(nodes_per_replica=2, config=config)
        rep = acr.run(until=200.0)
        assert rep.completed
        assert rep.storage_counters["tier2.persists"] >= 1
        # The group write streams behind the application, so the tier cost
        # shows in checkpoint_time but not in the blocking share.
        assert rep.checkpoint_blocking_time < rep.checkpoint_time

    def test_metrics_snapshot_exports_tier_counters(self):
        res = _tiered(metrics=MetricsRegistry())
        snap = res.report.metrics_snapshot
        assert snap is not None
        storage_keys = [k for k in snap["counters"] if k.startswith("storage.")]
        assert storage_keys
        assert any("level=2" in k for k in storage_keys)


class TestTierRestore:
    def test_buddy_pair_death_restores_from_durable_tier(self):
        # Both halves of a buddy pair die inside one detection window: the
        # in-memory double checkpoint is gone.  Without tiers that means
        # restart-from-beginning; with them, recovery resumes from the last
        # persisted generation.
        plan = InjectionPlan([
            FaultEvent(time=2.5, kind=FaultKind.HARD, replica=0, node_id=0),
            FaultEvent(time=2.51, kind=FaultKind.HARD, replica=1, node_id=0),
        ])
        res = _tiered(scheme="weak", total_iterations=60,
                      injection_plan=plan,
                      storage_tiers=default_tiers(tier2_interval=1.0,
                                                  tier3_interval=2.0))
        assert res.ok
        assert res.report.recoveries.get("tier-restore", 0) >= 1
        restores = [e for e in res.acr.timeline.of_kind(
            TimelineKind.TIER_RESTORE) if e.detail.get("hit")]
        assert restores
        assert restores[0].detail["iteration"] > 0
        assert res.report.storage_counters["tier2.restore_hits"] >= 1
        assert res.report.phase_times.get("recovery.tier2-read", 0.0) > 0.0
        assert res.report.result_correct is True

    def test_without_tiers_the_same_crash_restarts_from_beginning(self):
        plan = InjectionPlan([
            FaultEvent(time=2.5, kind=FaultKind.HARD, replica=0, node_id=0),
            FaultEvent(time=2.51, kind=FaultKind.HARD, replica=1, node_id=0),
        ])
        res = _tiered(scheme="weak", total_iterations=60,
                      injection_plan=plan, storage_tiers=())
        assert res.ok
        assert res.report.recoveries.get("restart-from-beginning", 0) >= 1
        assert res.report.recoveries.get("tier-restore", 0) == 0


class TestStorageFaultInjection:
    def test_injected_torn_write_is_recorded_and_counted(self):
        plan = InjectionPlan([
            # Armed before the first persist (~t=1.4) so that write trips it.
            FaultEvent(time=0.5, kind=FaultKind.TORN_WRITE, replica=0,
                       node_id=0, level=2),
        ])
        res = _tiered(injection_plan=plan,
                      storage_tiers=default_tiers(tier2_interval=1.0,
                                                  tier3_interval=50.0))
        assert res.ok
        injected = res.acr.timeline.of_kind(
            TimelineKind.STORAGE_FAULT_INJECTED)
        assert len(injected) == 1
        assert injected[0].detail["level"] == 2
        counters = res.report.storage_counters
        # Default protocol is atomic-dirsync: the tear aborts the write.
        assert counters["tier2.aborted_writes"] == 1

    def test_write_spike_inflates_one_persist(self):
        base = _tiered().report.phase_times["checkpoint.tier2-persist"]
        plan = InjectionPlan([
            FaultEvent(time=0.5, kind=FaultKind.WRITE_SPIKE, replica=0,
                       node_id=0, level=2),
        ])
        spiked = _tiered(injection_plan=plan)
        assert spiked.report.storage_counters["tier2.write_spikes"] == 1
        assert (spiked.report.phase_times["checkpoint.tier2-persist"]
                > base)


class TestSerialization:
    def test_report_round_trips_storage_counters(self):
        rep = _tiered().report
        payload = report_to_dict(rep)
        back = report_from_dict(payload)
        assert back.storage_counters == rep.storage_counters
        assert back.storage_counters["tier2.persists"] >= 1

    def test_legacy_payload_without_storage_counters_loads(self):
        payload = report_to_dict(_tiered().report)
        payload.pop("storage_counters")
        legacy = report_from_dict(payload)
        assert legacy.storage_counters == {}
