"""AMPI rank-program tests."""

import numpy as np
import pytest

from repro.ampi import (
    Allreduce,
    AMPIWorld,
    Barrier,
    Compute,
    MPIDeadlockError,
    Recv,
    Send,
    run_world,
)
from repro.runtime.des import Simulator
from repro.util.errors import ConfigurationError


class TestPointToPoint:
    def test_ring_token_pass(self):
        def ring(ctx):
            yield Send((ctx.rank + 1) % ctx.size, ctx.rank)
            token = yield Recv((ctx.rank - 1) % ctx.size)
            return token

        results = run_world(6, ring)
        assert results == [(r - 1) % 6 for r in range(6)]

    def test_tag_matching(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(1, "wrong", tag=9)
                yield Send(1, "right", tag=3)
                return None
            first = yield Recv(0, tag=3)  # must skip the tag-9 message
            second = yield Recv(0, tag=9)
            return (first, second)

        results = run_world(2, program)
        assert results[1] == ("right", "wrong")

    def test_any_source_receive(self):
        def program(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(ctx.size - 1):
                    got.append((yield Recv(None)))
                return sorted(got)
            yield Send(0, ctx.rank)
            return None

        results = run_world(4, program)
        assert results[0] == [1, 2, 3]

    def test_pairwise_exchange_no_deadlock(self):
        # Standard-mode sends are buffered, so the naive exchange completes.
        def program(ctx):
            partner = ctx.rank ^ 1
            yield Send(partner, ctx.rank)
            other = yield Recv(partner)
            return other

        assert run_world(4, program) == [1, 0, 3, 2]

    def test_unmatched_recv_reports_deadlock(self):
        def program(ctx):
            _ = yield Recv((ctx.rank + 1) % ctx.size)  # nobody sends

        with pytest.raises(MPIDeadlockError):
            run_world(3, program)


class TestCollectives:
    def test_barrier_synchronizes_times(self):
        release_times = {}

        def program(ctx):
            yield Compute(0.01 * (ctx.rank + 1))
            yield Barrier()
            release_times[ctx.rank] = ctx.rank  # placeholder
            return None

        sim = Simulator()
        world = AMPIWorld(sim, 4, program)
        world.run()
        # Everyone finishes only after the slowest rank's compute (0.04 s).
        assert sim.now >= 0.04

    def test_allreduce_sum(self):
        def program(ctx):
            total = yield Allreduce(ctx.rank + 1)
            return total

        assert run_world(5, program) == [15] * 5

    def test_allreduce_custom_op(self):
        def program(ctx):
            biggest = yield Allreduce(ctx.rank * 10, op=max)
            return biggest

        assert run_world(4, program) == [30] * 4

    def test_sequential_collectives(self):
        def program(ctx):
            a = yield Allreduce(1)
            yield Barrier()
            b = yield Allreduce(a)
            return b

        assert run_world(3, program) == [9] * 3


class TestNumericPrograms:
    def test_distributed_dot_product(self):
        """The HPCCG-style pattern: local partial sums + allreduce."""
        n = 32
        full = np.arange(n, dtype=float)

        def program(ctx):
            lo = ctx.rank * (n // ctx.size)
            hi = lo + n // ctx.size
            local = float((full[lo:hi] ** 2).sum())
            yield Compute(1e-4)
            total = yield Allreduce(local)
            return total

        expected = float((full ** 2).sum())
        for total in run_world(4, program):
            assert total == pytest.approx(expected)

    def test_jacobi_1d_halo_exchange(self):
        """An AMPI Jacobi: boundary exchange then local stencil update."""
        size = 4
        chunk = 8

        def program(ctx):
            rng = np.random.default_rng(ctx.rank)
            data = rng.uniform(size=chunk)
            for _ in range(5):
                left = (ctx.rank - 1) % size
                right = (ctx.rank + 1) % size
                yield Send(left, float(data[0]), tag=0)
                yield Send(right, float(data[-1]), tag=1)
                from_right = yield Recv(right, tag=0)
                from_left = yield Recv(left, tag=1)
                padded = np.concatenate([[from_left], data, [from_right]])
                data = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
            return float(data.sum())

        a = run_world(size, program)
        b = run_world(size, program)
        assert a == b  # deterministic across runs


class TestValidation:
    def test_bad_destination(self):
        def program(ctx):
            yield Send(99, "x")

        with pytest.raises(ConfigurationError):
            run_world(2, program)

    def test_zero_size_communicator(self):
        with pytest.raises(ConfigurationError):
            AMPIWorld(Simulator(), 0, lambda ctx: iter(()))

    def test_simulated_time_reflects_compute(self):
        def program(ctx):
            yield Compute(2.0)

        sim = Simulator()
        world = AMPIWorld(sim, 3, program)
        world.run()
        assert sim.now >= 2.0
