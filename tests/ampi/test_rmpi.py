"""Message-cloning replication tests (§3.1's rejected alternative)."""

import pytest

from repro.ampi import Allreduce, Compute, Recv, Send
from repro.ampi.rmpi import MessageCloningReplication
from repro.util.errors import ConfigurationError


def master_worker(ctx):
    """A wildcard-heavy racy program: the master records arrival order.

    Workers compute for (jittered) different durations and report; the
    master's result is the order in which reports arrived - exactly the kind
    of non-determinism the paper says forces rank serialization in
    message-cloning replication.
    """
    if ctx.rank == 0:
        order = []
        for _ in range(ctx.size - 1):
            order.append((yield Recv(None)))  # MPI_ANY_SOURCE
        return tuple(order)
    yield Compute(0.01 * (1 + (ctx.rank * 7) % 5))
    yield Send(0, ctx.rank)
    return ctx.rank


def deterministic_ring(ctx):
    """No wildcards at all: replication needs no directives here."""
    token = ctx.rank
    for _ in range(3):
        yield Send((ctx.rank + 1) % ctx.size, token)
        token = yield Recv((ctx.rank - 1) % ctx.size)
        yield Compute(0.005)
    total = yield Allreduce(token)
    return total


class TestConsistency:
    def test_independent_replicas_diverge_on_racy_program(self):
        rep = MessageCloningReplication(6, master_worker,
                                        jitter_amplitude=0.4, seed=3)
        result = rep.run_independent()
        # The two free-running replicas raced differently: the master saw
        # different arrival orders.
        assert result.leader_results[0] != result.mirror_results[0]

    def test_cloning_protocol_forces_identical_results(self):
        rep = MessageCloningReplication(6, master_worker,
                                        jitter_amplitude=0.4, seed=3)
        result = rep.run()
        assert result.consistent
        assert result.leader_results[0] == result.mirror_results[0]
        assert result.directives_sent == 5  # one per wildcard receive

    def test_protocol_consistent_across_seeds(self):
        for seed in range(5):
            rep = MessageCloningReplication(5, master_worker,
                                            jitter_amplitude=0.5, seed=seed)
            assert rep.run().consistent


class TestSerializationCost:
    def test_mirror_lags_by_directive_latency(self):
        rep = MessageCloningReplication(6, master_worker,
                                        directive_latency=5e-3,
                                        jitter_amplitude=0.0, seed=0)
        synced = rep.run()
        free = rep.run_independent()
        # The synchronized mirror trails the leader by the cross-replica
        # decision latency; independent replicas pay nothing.
        assert synced.finish_time > free.finish_time
        assert synced.mirror_lag == pytest.approx(5e-3, rel=1e-6)
        assert free.mirror_lag == pytest.approx(0.0, abs=1e-9)

    def test_cost_scales_with_wildcard_count(self):
        def chatty(n_rounds):
            def program(ctx):
                if ctx.rank == 0:
                    got = []
                    for _ in range(n_rounds * (ctx.size - 1)):
                        got.append((yield Recv(None)))
                    return len(got)
                for _ in range(n_rounds):
                    yield Compute(0.001)
                    yield Send(0, ctx.rank)
                return ctx.rank

            return program

        few = MessageCloningReplication(4, chatty(2), directive_latency=2e-3,
                                        jitter_amplitude=0.0, seed=0).run()
        many = MessageCloningReplication(4, chatty(8), directive_latency=2e-3,
                                         jitter_amplitude=0.0, seed=0).run()
        # The directive traffic (one cross-replica control message per
        # wildcard receive) scales with the wildcard count; the trailing lag
        # stays bounded by the directive latency because decisions pipeline.
        assert many.directives_sent == 4 * few.directives_sent
        assert many.mirror_lag > 0
        assert many.mirror_lag <= 2e-3 + 1e-9

    def test_deterministic_program_pays_nothing(self):
        # §3.1's flip side: without unknown-source receives the replicas can
        # run independently even under message cloning.
        rep = MessageCloningReplication(4, deterministic_ring,
                                        directive_latency=1e-2,
                                        jitter_amplitude=0.2, seed=1)
        result = rep.run()
        assert result.consistent
        assert result.directives_sent == 0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MessageCloningReplication(4, master_worker, directive_latency=-1.0)
        with pytest.raises(ConfigurationError):
            MessageCloningReplication(4, master_worker, jitter_amplitude=1.0)
