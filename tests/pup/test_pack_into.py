"""Zero-copy packing tests: buffer reuse, dirty tracking, drift detection."""

import threading

import numpy as np
import pytest

from repro.pup.puper import (
    BufferPackingPUPer,
    PUPError,
    SizingPUPer,
    pack,
    pack_into,
    sizeof,
    unpack,
)


class State:
    def __init__(self, n=32):
        self.iteration = 0
        self.grid = np.arange(float(n))
        self.ids = np.arange(4, dtype=np.int32)

    def pup(self, p):
        self.iteration = p.pup_int("iteration", self.iteration)
        self.grid = p.pup_array("grid", self.grid)
        self.ids = p.pup_array("ids", self.ids)


class TestBufferIdentity:
    def test_buffer_identity_stable_across_rounds(self):
        src = State()
        state = pack_into(src)
        buf = state.buffer
        for _ in range(3):
            src.iteration += 1
            src.grid += 1.0
            out = pack_into(src, state)
            assert out is state
            assert out.buffer is buf  # zero allocations in steady state

    def test_first_call_matches_pack(self):
        src = State()
        assert np.array_equal(pack_into(State()).buffer, pack(src).buffer)

    def test_round_trip_is_bit_identical(self):
        src = State()
        state = pack_into(src)
        for round_no in range(1, 4):
            src.iteration = round_no
            src.grid *= -1.5
            pack_into(src, state)
            dst = State()
            unpack(dst, state)
            assert dst.iteration == round_no
            assert np.array_equal(dst.grid.view(np.uint64),
                                  src.grid.view(np.uint64))
            assert np.array_equal(dst.ids, src.ids)


class TestDirtyTracking:
    def test_unchanged_fields_keep_version(self):
        src = State()
        state = pack_into(src)
        src.grid += 1.0
        pack_into(src, state, track_dirty=True)
        assert state.version_of("grid") == 1
        assert state.version_of("ids") == 0
        assert state.version_of("iteration") == 0

    def test_every_change_bumps_version(self):
        src = State()
        state = pack_into(src)
        for expected in range(1, 4):
            src.grid += 1.0
            pack_into(src, state, track_dirty=True)
            assert state.version_of("grid") == expected

    def test_untracked_repack_bumps_everything(self):
        src = State()
        state = pack_into(src)
        pack_into(src, state)  # track_dirty=False: conservative bump
        assert state.version_of("ids") == 1

    def test_copy_preserves_versions(self):
        src = State()
        state = pack_into(src)
        src.grid += 1.0
        pack_into(src, state, track_dirty=True)
        assert state.copy().version_of("grid") == 1


class TestDriftDetection:
    def test_shape_drift_raises(self):
        src = State()
        state = pack_into(src)
        src.grid = np.arange(16.0)
        with pytest.raises(PUPError, match="drifted"):
            pack_into(src, state)

    def test_dtype_drift_raises(self):
        src = State()
        state = pack_into(src)
        src.ids = src.ids.astype(np.int64)
        with pytest.raises(PUPError, match="drifted"):
            pack_into(src, state)

    def test_extra_field_raises(self):
        src = State()
        state = pack_into(src)

        class Grown(State):
            def pup(self, p):
                super().pup(p)
                p.pup_int("extra", 7)

        grown = Grown()
        with pytest.raises(PUPError, match="grew"):
            pack_into(grown, state)

    def test_missing_field_raises(self):
        src = State()
        state = pack_into(src)

        class Shrunk(State):
            def pup(self, p):
                self.iteration = p.pup_int("iteration", self.iteration)
                self.grid = p.pup_array("grid", self.grid)

        with pytest.raises(PUPError, match="consumed 2 of 3"):
            pack_into(Shrunk(), state)

    def test_renamed_field_raises(self):
        src = State()
        state = pack_into(src)

        class Renamed(State):
            def pup(self, p):
                self.iteration = p.pup_int("step", self.iteration)
                self.grid = p.pup_array("grid", self.grid)
                self.ids = p.pup_array("ids", self.ids)

        with pytest.raises(PUPError, match="order mismatch"):
            pack_into(Renamed(), state)

    def test_drift_never_writes_out_of_bounds(self):
        src = State()
        state = pack_into(src)
        before = state.buffer.copy()
        src.ids = np.arange(400, dtype=np.int32)  # would overrun its slice
        with pytest.raises(PUPError):
            pack_into(src, state)
        # iteration and grid were re-written (same values); ids slice intact.
        assert np.array_equal(state.buffer, before)


class TestBufferValidation:
    def test_undersized_buffer_rejected(self):
        src = State()
        buf = np.zeros(sizeof(src) - 1, dtype=np.uint8)
        p = BufferPackingPUPer(buf)
        with pytest.raises(PUPError, match="overflows"):
            src.pup(p)

    def test_oversized_buffer_detected_at_finish(self):
        src = State()
        buf = np.zeros(sizeof(src) + 8, dtype=np.uint8)
        p = BufferPackingPUPer(buf)
        src.pup(p)
        with pytest.raises(PUPError, match="wrote"):
            p.finish()

    def test_non_uint8_buffer_rejected(self):
        with pytest.raises(PUPError, match="uint8"):
            BufferPackingPUPer(np.zeros(8, dtype=np.float64))

    def test_readonly_buffer_rejected(self):
        buf = np.zeros(8, dtype=np.uint8)
        buf.flags.writeable = False
        with pytest.raises(PUPError, match="writable"):
            BufferPackingPUPer(buf)


class Inner:
    def __init__(self, tag):
        self.value = np.full(3, float(tag))

    def pup(self, p):
        self.value = p.pup_array("value", self.value)


class Outer:
    def __init__(self, tag):
        self.tag = tag
        self.inner = Inner(tag)

    def pup(self, p):
        self.tag = p.pup_int("tag", self.tag)
        p.pup_object("inner", self.inner)


class TestScopeConcurrency:
    """The scope stack is per-PUPer instance, so concurrent packs of nested
    objects (parallel campaigns, threads) cannot cross-contaminate names."""

    def test_nested_names_qualified_per_instance(self):
        state = pack(Outer(1))
        assert [f.name for f in state.fields] == ["tag", "inner.value"]

    def test_concurrent_nested_packs_keep_names_straight(self):
        errors = []

        def worker(tag):
            try:
                for _ in range(200):
                    state = pack(Outer(tag))
                    names = [f.name for f in state.fields]
                    if names != ["tag", "inner.value"]:
                        errors.append(names)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_interleaved_pupers_do_not_share_scope(self):
        sizer = SizingPUPer()
        outer = Outer(2)
        # Simulate interleaving: enter a scope on one PUPer, then use another.
        sizer._scopes = ["somewhere", "deep"]
        state = pack(outer)
        assert [f.name for f in state.fields] == ["tag", "inner.value"]
