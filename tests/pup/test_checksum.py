"""Fletcher checksum tests (paper §4.2 optimization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pup.checksum import (
    CHECKSUM_NBYTES,
    DigestCache,
    checkpoint_checksum,
    combine_digests,
    field_digest,
    fletcher32,
    fletcher64,
)
from repro.pup.puper import pack_into


def _naive_fletcher(data: bytes, word_size: int, modulus: int) -> tuple[int, int]:
    """Straightforward word-at-a-time scalar reference implementation."""
    if len(data) % word_size:
        data = data + b"\x00" * (word_size - len(data) % word_size)
    s1 = s2 = 0
    for i in range(0, len(data), word_size):
        word = int.from_bytes(data[i : i + word_size], "little")
        s1 = (s1 + word) % modulus
        s2 = (s2 + s1) % modulus
    return s1, s2


def _naive_fletcher32(data: bytes) -> int:
    s1, s2 = _naive_fletcher(data, 2, 65535)
    return (s2 << 16) | s1


def _naive_fletcher64(data: bytes) -> int:
    s1, s2 = _naive_fletcher(data, 4, 2**32 - 1)
    return (s2 << 32) | s1


def _naive_checkpoint_checksum(data: bytes) -> bytes:
    """Scalar reference of the 32-byte striped digest."""
    out = b""
    for stripe in range(4):
        out += _naive_fletcher64(data[stripe::4]).to_bytes(8, "little")
    return out


class TestFletcher32:
    def test_matches_naive_reference(self):
        data = bytes(range(256)) * 3
        assert fletcher32(data) == _naive_fletcher32(data)

    def test_known_vector_abcde(self):
        # Standard test vector: Fletcher-32 of "abcde" = 0xF04FC729
        # (16-bit little-endian words, zero-padded).
        assert fletcher32(b"abcde") == 0xF04FC729

    def test_known_vector_abcdef(self):
        assert fletcher32(b"abcdef") == 0x56502D2A

    def test_position_dependence(self):
        # A plain additive checksum cannot distinguish transposed blocks.
        a = fletcher32(b"\x01\x00\x02\x00")
        b = fletcher32(b"\x02\x00\x01\x00")
        assert a != b

    def test_empty_input(self):
        assert fletcher32(b"") == 0

    def test_accepts_ndarray(self):
        arr = np.arange(100, dtype=np.float64)
        assert fletcher32(arr) == fletcher32(arr.tobytes())

    def test_blockwise_matches_naive_on_large_input(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=5_000_000, dtype=np.uint8).tobytes()
        assert fletcher32(data) == _naive_fletcher32(data)

    @given(st.binary(max_size=2048))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_reference(self, data):
        assert fletcher32(data) == _naive_fletcher32(data)


class TestFletcher64:
    @pytest.mark.parametrize("size", [0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 1000])
    def test_matches_naive_reference_edge_sizes(self, size):
        # Empty, sub-word, unaligned, and multi-word buffers.
        rng = np.random.default_rng(size)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        assert fletcher64(data) == _naive_fletcher64(data)

    def test_blockwise_matches_naive_across_block_boundary(self):
        # _BLOCK64 = 2**14 words = 64 KiB; cross it with an unaligned size.
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=3 * (1 << 16) + 5,
                            dtype=np.uint8).tobytes()
        assert fletcher64(data) == _naive_fletcher64(data)

    @given(st.binary(max_size=2048))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_reference(self, data):
        assert fletcher64(data) == _naive_fletcher64(data)

    def test_single_bit_flip_detected(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8)
        base = fletcher64(data)
        for byte in (0, 100, 4095):
            corrupted = data.copy()
            corrupted[byte] ^= 0x10
            assert fletcher64(corrupted) != base

    def test_deterministic(self):
        data = b"checkpoint" * 100
        assert fletcher64(data) == fletcher64(data)


class TestCheckpointChecksum:
    def test_digest_is_32_bytes(self):
        # "the checksum data size is only 32 bytes" (§6.2).
        assert CHECKSUM_NBYTES == 32
        assert len(checkpoint_checksum(b"some checkpoint data")) == 32

    def test_detects_bit_flips_anywhere(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8)
        base = checkpoint_checksum(data)
        for byte_index in (0, 1, 2, 3, 9_999, 5_000):
            for bit in (0, 7):
                corrupted = data.copy()
                corrupted[byte_index] ^= 1 << bit
                assert checkpoint_checksum(corrupted) != base, (byte_index, bit)

    @given(st.binary(min_size=1, max_size=512),
           st.integers(0, 10_000), st.integers(0, 7))
    @settings(max_examples=80, deadline=None)
    def test_property_any_single_bit_flip_detected(self, data, pos, bit):
        pos %= len(data)
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        base = checkpoint_checksum(arr)
        arr[pos] ^= 1 << bit
        assert checkpoint_checksum(arr) != base

    def test_empty_digest_stable(self):
        assert checkpoint_checksum(b"") == checkpoint_checksum(b"")

    @pytest.mark.parametrize("size", [0, 1, 2, 3, 5, 15, 16, 17, 63, 64, 1001])
    def test_matches_naive_striped_reference(self, size):
        rng = np.random.default_rng(size + 100)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        assert checkpoint_checksum(data) == _naive_checkpoint_checksum(data)

    def test_blockwise_matches_naive_on_large_input(self):
        # Each stripe of 600 KB spans multiple 2**14-word Fletcher-64 blocks.
        rng = np.random.default_rng(8)
        data = rng.integers(0, 256, size=600_000, dtype=np.uint8).tobytes()
        assert checkpoint_checksum(data) == _naive_checkpoint_checksum(data)

    @given(st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_striped_reference(self, data):
        assert checkpoint_checksum(data) == _naive_checkpoint_checksum(data)


class _FieldState:
    """Sixteen small fields for incremental-digest tests."""

    def __init__(self, nfields=16):
        rng = np.random.default_rng(3)
        self.arrays = [rng.random(37 + i) for i in range(nfields)]

    def pup(self, p):
        for i, arr in enumerate(self.arrays):
            self.arrays[i] = p.pup_array(f"f{i:02d}", arr)


def _naive_field_granular(state) -> bytes:
    """Scalar reference: per-field independent striping, then Fletcher
    concatenation per stripe."""
    modulus = 2**32 - 1
    out = b""
    for stripe in range(4):
        s1 = s2 = 0
        for rec in state.fields:
            raw = bytes(state.buffer[rec.offset : rec.offset + rec.nbytes])
            part = raw[stripe::4]
            if len(part) % 4:
                part = part + b"\x00" * (4 - len(part) % 4)
            for i in range(0, len(part), 4):
                word = int.from_bytes(part[i : i + 4], "little")
                s1 = (s1 + word) % modulus
                s2 = (s2 + s1) % modulus
        out += ((s2 << 32) | s1).to_bytes(8, "little")
    return out


class TestFieldGranularChecksum:
    def test_composition_matches_scalar_reference(self):
        state = pack_into(_FieldState())
        digest = checkpoint_checksum(state)
        assert digest == _naive_field_granular(state)

    def test_field_digest_composes_to_checkpoint_digest(self):
        state = pack_into(_FieldState())
        digests = [
            field_digest(state.buffer[rec.offset : rec.offset + rec.nbytes])
            for rec in state.fields
        ]
        assert combine_digests(digests) == checkpoint_checksum(state)

    def test_incremental_equals_from_scratch_after_dirty_update(self):
        obj = _FieldState()
        state = pack_into(obj)
        cache = DigestCache()
        checkpoint_checksum(state, cache=cache)  # warm
        for dirty in (0, 5, 15):
            obj.arrays[dirty] *= 2.0
            pack_into(obj, state, track_dirty=True)
            incremental = checkpoint_checksum(state, cache=cache)
            from_scratch = checkpoint_checksum(state)
            assert incremental == from_scratch

    def test_cache_only_rehashes_dirty_fields(self):
        obj = _FieldState()
        state = pack_into(obj)
        cache = DigestCache()
        checkpoint_checksum(state, cache=cache)
        obj.arrays[3] += 1.0
        pack_into(obj, state, track_dirty=True)
        cache.hits = cache.misses = 0
        checkpoint_checksum(state, cache=cache)
        assert cache.misses == 1  # only the dirty field
        assert cache.hits == len(obj.arrays) - 1

    def test_dirty_field_changes_digest(self):
        obj = _FieldState()
        state = pack_into(obj)
        cache = DigestCache()
        base = checkpoint_checksum(state, cache=cache)
        obj.arrays[0][0] += 1.0
        pack_into(obj, state, track_dirty=True)
        assert checkpoint_checksum(state, cache=cache) != base

    def test_field_granular_differs_from_byte_level_by_design(self):
        # Fields pad their stripe word streams independently, so the
        # field-granular digest is a distinct function from the byte-level
        # one unless every field is 16-byte aligned; both replicas must
        # simply agree on the granularity.
        state = pack_into(_FieldState())
        assert checkpoint_checksum(state) == checkpoint_checksum(
            state.buffer, fields=state.fields)
