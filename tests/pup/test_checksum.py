"""Fletcher checksum tests (paper §4.2 optimization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pup.checksum import (
    CHECKSUM_NBYTES,
    checkpoint_checksum,
    fletcher32,
    fletcher64,
)


def _naive_fletcher32(data: bytes) -> int:
    """Straightforward word-at-a-time reference implementation."""
    if len(data) % 2:
        data = data + b"\x00"
    s1 = s2 = 0
    for i in range(0, len(data), 2):
        word = data[i] | (data[i + 1] << 8)
        s1 = (s1 + word) % 65535
        s2 = (s2 + s1) % 65535
    return (s2 << 16) | s1


class TestFletcher32:
    def test_matches_naive_reference(self):
        data = bytes(range(256)) * 3
        assert fletcher32(data) == _naive_fletcher32(data)

    def test_known_vector_abcde(self):
        # Standard test vector: Fletcher-32 of "abcde" = 0xF04FC729
        # (16-bit little-endian words, zero-padded).
        assert fletcher32(b"abcde") == 0xF04FC729

    def test_known_vector_abcdef(self):
        assert fletcher32(b"abcdef") == 0x56502D2A

    def test_position_dependence(self):
        # A plain additive checksum cannot distinguish transposed blocks.
        a = fletcher32(b"\x01\x00\x02\x00")
        b = fletcher32(b"\x02\x00\x01\x00")
        assert a != b

    def test_empty_input(self):
        assert fletcher32(b"") == 0

    def test_accepts_ndarray(self):
        arr = np.arange(100, dtype=np.float64)
        assert fletcher32(arr) == fletcher32(arr.tobytes())

    def test_blockwise_matches_naive_on_large_input(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=5_000_000, dtype=np.uint8).tobytes()
        assert fletcher32(data) == _naive_fletcher32(data)

    @given(st.binary(max_size=2048))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_reference(self, data):
        assert fletcher32(data) == _naive_fletcher32(data)


class TestFletcher64:
    def test_single_bit_flip_detected(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8)
        base = fletcher64(data)
        for byte in (0, 100, 4095):
            corrupted = data.copy()
            corrupted[byte] ^= 0x10
            assert fletcher64(corrupted) != base

    def test_deterministic(self):
        data = b"checkpoint" * 100
        assert fletcher64(data) == fletcher64(data)


class TestCheckpointChecksum:
    def test_digest_is_32_bytes(self):
        # "the checksum data size is only 32 bytes" (§6.2).
        assert CHECKSUM_NBYTES == 32
        assert len(checkpoint_checksum(b"some checkpoint data")) == 32

    def test_detects_bit_flips_anywhere(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8)
        base = checkpoint_checksum(data)
        for byte_index in (0, 1, 2, 3, 9_999, 5_000):
            for bit in (0, 7):
                corrupted = data.copy()
                corrupted[byte_index] ^= 1 << bit
                assert checkpoint_checksum(corrupted) != base, (byte_index, bit)

    @given(st.binary(min_size=1, max_size=512),
           st.integers(0, 10_000), st.integers(0, 7))
    @settings(max_examples=80, deadline=None)
    def test_property_any_single_bit_flip_detected(self, data, pos, bit):
        pos %= len(data)
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        base = checkpoint_checksum(arr)
        arr[pos] ^= 1 << bit
        assert checkpoint_checksum(arr) != base

    def test_empty_digest_stable(self):
        assert checkpoint_checksum(b"") == checkpoint_checksum(b"")
