"""PUP framework tests: sizing, packing, unpacking, round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pup.puper import (
    PackingPUPer,
    PUPError,
    SizingPUPer,
    UnpackingPUPer,
    pack,
    sizeof,
    unpack,
)


class Sample:
    """A pupable object covering every field kind."""

    def __init__(self):
        self.count = 17
        self.dt = 0.25
        self.active = True
        self.label = "replica-one"
        self.blob = b"\x00\x01\x02"
        self.grid = np.arange(24.0).reshape(2, 3, 4)
        self.ids = np.arange(5, dtype=np.int32)

    def pup(self, p):
        self.count = p.pup_int("count", self.count)
        self.dt = p.pup_float("dt", self.dt)
        self.active = p.pup_bool("active", self.active)
        self.label = p.pup_str("label", self.label)
        self.blob = p.pup_bytes("blob", self.blob)
        self.grid = p.pup_array("grid", self.grid)
        self.ids = p.pup_array("ids", self.ids)


class Nested:
    def __init__(self):
        self.inner = Sample()
        self.outer_value = 3.5

    def pup(self, p):
        self.outer_value = p.pup_float("outer_value", self.outer_value)
        p.pup_object("inner", self.inner)


class TestSizing:
    def test_sizeof_counts_all_bytes(self):
        s = Sample()
        expected = 8 + 8 + 8 + len("replica-one") + 3 + 24 * 8 + 5 * 4
        assert sizeof(s) == expected

    def test_sizing_puper_counts_fields(self):
        p = SizingPUPer()
        Sample().pup(p)
        assert p.nfields == 7
        assert p.is_sizing and not p.is_unpacking


class TestRoundTrip:
    def test_pack_unpack_restores_everything(self):
        src = Sample()
        src.grid *= 3.0
        src.count = 99
        state = pack(src)
        dst = Sample()
        dst.grid[:] = 0
        dst.count = 0
        dst.label = "x"
        unpack(dst, state)
        assert dst.count == 99
        assert dst.dt == src.dt
        assert dst.active is True
        assert dst.label == "replica-one"
        assert dst.blob == b"\x00\x01\x02"
        assert np.array_equal(dst.grid, src.grid)
        assert np.array_equal(dst.ids, src.ids)

    def test_unpack_is_in_place_for_matching_arrays(self):
        src = Sample()
        state = pack(src)
        dst = Sample()
        original = dst.grid
        dst.grid[:] = -1
        unpack(dst, state)
        assert dst.grid is original  # restored without reallocation

    def test_packed_size_matches_sizeof(self):
        s = Sample()
        assert pack(s).nbytes == sizeof(s)

    def test_nested_objects_round_trip(self):
        src = Nested()
        src.inner.grid += 10
        src.outer_value = -1.0
        state = pack(src)
        dst = Nested()
        unpack(dst, state)
        assert dst.outer_value == -1.0
        assert np.array_equal(dst.inner.grid, src.inner.grid)

    def test_nested_field_names_are_qualified(self):
        state = pack(Nested())
        names = [f.name for f in state.fields]
        assert "outer_value" in names
        assert "inner.grid" in names

    def test_string_length_change_round_trips(self):
        src = Sample()
        src.label = "a-much-longer-label-than-before"
        state = pack(src)
        dst = Sample()
        unpack(dst, state)
        assert dst.label == src.label


class TestErrors:
    def test_duplicate_field_names_rejected(self):
        class Dup:
            def pup(self, p):
                p.pup_int("x", 1)
                p.pup_int("x", 2)

        with pytest.raises(PUPError, match="duplicate"):
            pack(Dup())

    def test_object_dtype_rejected(self):
        class Bad:
            def pup(self, p):
                p.pup_array("stuff", np.array([object()]))

        with pytest.raises(PUPError, match="object"):
            pack(Bad())

    def test_field_order_mismatch_detected(self):
        class A:
            def pup(self, p):
                p.pup_int("first", 1)
                p.pup_int("second", 2)

        class B:
            def pup(self, p):
                p.pup_int("second", 2)
                p.pup_int("first", 1)

        state = pack(A())
        with pytest.raises(PUPError, match="order mismatch"):
            unpack(B(), state)

    def test_reading_past_end_detected(self):
        class Short:
            def pup(self, p):
                p.pup_int("only", 1)

        class Long:
            def pup(self, p):
                p.pup_int("only", 1)
                p.pup_int("extra", 2)

        state = pack(Short())
        with pytest.raises(PUPError, match="past checkpoint end"):
            unpack(Long(), state)

    def test_unconsumed_fields_detected(self):
        class Long:
            def pup(self, p):
                p.pup_int("a", 1)
                p.pup_int("b", 2)

        class Short:
            def pup(self, p):
                p.pup_int("a", 1)

        state = pack(Long())
        with pytest.raises(PUPError, match="consumed 1 of 2"):
            unpack(Short(), state)


class TestListOfArrays:
    def test_round_trip_same_length(self):
        class Holder:
            def __init__(self, items):
                self.items = items

            def pup(self, p):
                self.items = p.pup_list_of_arrays("items", self.items)

        src = Holder([np.arange(3.0), np.arange(5.0) * 2])
        state = pack(src)
        dst = Holder([np.zeros(3), np.zeros(5)])
        unpack(dst, state)
        assert len(dst.items) == 2
        assert np.array_equal(dst.items[1], np.arange(5.0) * 2)


class TestPropertyBased:
    @given(arrays(dtype=np.float64, shape=st.tuples(
        st.integers(1, 8), st.integers(1, 8))))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_float_arrays_round_trip(self, arr):
        class Holder:
            def __init__(self, a):
                self.a = a

            def pup(self, p):
                self.a = p.pup_array("a", self.a)

        src = Holder(arr.copy())
        state = pack(src)
        dst = Holder(np.zeros_like(arr))
        unpack(dst, state)
        # NaN-safe bitwise equality.
        assert np.array_equal(
            dst.a.view(np.uint64), arr.view(np.uint64)
        )

    @given(st.integers(min_value=-(2**62), max_value=2**62),
           st.floats(allow_nan=False, allow_infinity=True),
           st.text(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_scalars_round_trip(self, i, f, s):
        class Holder:
            def __init__(self):
                self.i, self.f, self.s = i, f, s

            def pup(self, p):
                self.i = p.pup_int("i", self.i)
                self.f = p.pup_float("f", self.f)
                self.s = p.pup_str("s", self.s)

        src = Holder()
        state = pack(src)
        dst = Holder()
        dst.i, dst.f, dst.s = 0, 0.0, ""
        unpack(dst, state)
        assert dst.i == i
        assert dst.f == f
        assert dst.s == s
