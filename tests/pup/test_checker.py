"""Checkpoint comparison (PUPer::checker) tests — the SDC detector core."""

import numpy as np
import pytest

from repro.pup.checker import compare_checkpoints, compare_checksums
from repro.pup.checksum import checkpoint_checksum
from repro.pup.puper import PUPError, pack


class State:
    def __init__(self, n=16, seed=0):
        rng = np.random.default_rng(seed)
        self.iteration = 5
        self.data = rng.uniform(size=n)
        self.timer = 1.25
        self.noise = rng.uniform(size=4)

    def pup(self, p):
        self.iteration = p.pup_int("iteration", self.iteration)
        self.data = p.pup_array("data", self.data)
        # Timers legitimately differ between replicas: skip comparing (§4.1).
        self.timer = p.pup_float("timer", self.timer, skip_compare=True)
        # Round-off-tolerant field with a custom relative error bound (§4.1).
        self.noise = p.pup_array("noise", self.noise, rtol=1e-6)


class TestFullComparison:
    def test_identical_states_match(self):
        a, b = State(), State()
        result = compare_checkpoints(pack(a), pack(b))
        assert result.match
        assert result.mismatches == []
        assert result.compared_bytes > 0

    def test_single_bit_flip_detected_with_field_name(self):
        a, b = State(), State()
        b.data.view(np.uint8)[13] ^= 1
        result = compare_checkpoints(pack(a), pack(b))
        assert not result.match
        assert result.mismatches[0].name == "data"
        assert result.mismatches[0].n_differing >= 1
        assert "SDC detected" in result.summary()

    def test_integer_corruption_detected(self):
        a, b = State(), State()
        b.iteration = 6
        result = compare_checkpoints(pack(a), pack(b))
        assert not result.match
        assert result.mismatches[0].name == "iteration"

    def test_skip_compare_fields_ignored(self):
        a, b = State(), State()
        b.timer = 99999.0  # replica-local value: must not trigger SDC
        result = compare_checkpoints(pack(a), pack(b))
        assert result.match
        assert result.skipped_bytes == 8

    def test_per_field_rtol_accepts_roundoff(self):
        a, b = State(), State()
        b.noise *= 1.0 + 1e-9  # well inside rtol=1e-6
        assert compare_checkpoints(pack(a), pack(b)).match

    def test_per_field_rtol_still_catches_large_errors(self):
        a, b = State(), State()
        b.noise[2] *= 1.01
        result = compare_checkpoints(pack(a), pack(b))
        assert not result.match
        assert result.mismatches[0].name == "noise"

    def test_global_default_rtol(self):
        a, b = State(), State()
        b.data *= 1.0 + 1e-12
        assert not compare_checkpoints(pack(a), pack(b)).match
        assert compare_checkpoints(pack(a), pack(b), default_rtol=1e-9).match

    def test_structural_mismatch_reported(self):
        class Other:
            def pup(self, p):
                p.pup_int("iteration", 1)

        result = compare_checkpoints(pack(State()), pack(Other()))
        assert not result.match
        assert result.mismatches[0].kind == "structure"

    def test_shape_change_is_structural(self):
        a = State(n=16)
        b = State(n=17)
        result = compare_checkpoints(pack(a), pack(b))
        assert not result.match
        assert any(m.kind == "structure" for m in result.mismatches)

    def test_max_abs_diff_reported(self):
        a, b = State(), State()
        b.data[3] += 0.5
        result = compare_checkpoints(pack(a), pack(b))
        assert result.mismatches[0].max_abs_diff == pytest.approx(0.5)

    def test_nan_equal_under_tolerance(self):
        a, b = State(), State()
        a.noise[0] = np.nan
        b.noise[0] = np.nan
        assert compare_checkpoints(pack(a), pack(b)).match


class TestChecksumComparison:
    def test_matching_digest(self):
        a, b = State(), State()
        sa, sb = pack(a), pack(b)
        result = compare_checksums(sa, checkpoint_checksum(sb.buffer))
        assert result.match
        assert result.method == "checksum"

    def test_corruption_detected(self):
        a, b = State(), State()
        b.data.view(np.uint8)[40] ^= 0x80
        result = compare_checksums(pack(a), checkpoint_checksum(pack(b).buffer))
        assert not result.match

    def test_checksum_cannot_honor_skip_fields(self):
        # The documented limitation: replica-local timers poison the digest.
        a, b = State(), State()
        b.timer = 42.0
        result = compare_checksums(pack(a), checkpoint_checksum(pack(b).buffer))
        assert not result.match

    def test_bad_digest_length_rejected(self):
        with pytest.raises(PUPError):
            compare_checksums(pack(State()), b"too-short")
