"""Deterministic RNG stream tests."""

import numpy as np
import pytest

from repro.util.rng import RngStream, spawn_streams


class TestRngStream:
    def test_same_seed_and_name_reproduce(self):
        a = RngStream(42, "faults").uniform(size=100)
        b = RngStream(42, "faults").uniform(size=100)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        a = RngStream(42, "faults").uniform(size=100)
        b = RngStream(42, "apps").uniform(size=100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStream(1, "x").uniform(size=50)
        b = RngStream(2, "x").uniform(size=50)
        assert not np.array_equal(a, b)

    def test_child_streams_are_namespaced(self):
        root = RngStream(7, "root")
        c1 = root.child("a")
        c2 = root.child("b")
        assert c1.name == "root/a"
        assert not np.array_equal(c1.uniform(size=20), c2.uniform(size=20))

    def test_child_is_reproducible(self):
        a = RngStream(7, "root").child("sub").exponential(2.0, size=10)
        b = RngStream(7, "root").child("sub").exponential(2.0, size=10)
        assert np.array_equal(a, b)

    def test_weibull_scale_applied(self):
        rng = RngStream(0, "w")
        samples = rng.weibull(1.0, 100.0, size=20_000)
        # shape 1 Weibull = exponential with the given scale (mean == scale).
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)

    def test_integers_bounds(self):
        rng = RngStream(0, "i")
        vals = rng.integers(0, 10, size=1000)
        assert vals.min() >= 0 and vals.max() < 10

    def test_spawn_streams(self):
        streams = spawn_streams(9, "a", "b", "c")
        assert set(streams) == {"a", "b", "c"}
        assert all(isinstance(s, RngStream) for s in streams.values())
