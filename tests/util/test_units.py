"""Unit-conversion tests."""

import math

import pytest

from repro.util.units import (
    FIT_PER_HOUR,
    GiB,
    HOURS,
    KiB,
    MiB,
    YEARS,
    fit_to_mtbf_seconds,
    mtbf_seconds_to_fit,
    parse_size,
    pretty_bytes,
    pretty_seconds,
)


class TestFitConversions:
    def test_one_fit_is_one_failure_per_billion_device_hours(self):
        assert fit_to_mtbf_seconds(1.0) == pytest.approx(1e9 * HOURS)

    def test_mtbf_scales_inversely_with_devices(self):
        single = fit_to_mtbf_seconds(100.0, devices=1)
        many = fit_to_mtbf_seconds(100.0, devices=1000)
        assert many == pytest.approx(single / 1000)

    def test_paper_figure7_magnitude(self):
        # 100 FIT/socket over 65536 sockets: MTBF of about 152.6 hours.
        mtbf = fit_to_mtbf_seconds(100.0, devices=65536)
        assert mtbf / HOURS == pytest.approx(152.59, rel=1e-3)

    def test_zero_fit_means_never(self):
        assert fit_to_mtbf_seconds(0.0) == math.inf

    def test_round_trip(self):
        mtbf = fit_to_mtbf_seconds(250.0, devices=7)
        assert mtbf_seconds_to_fit(mtbf, devices=7) == pytest.approx(250.0)

    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError):
            fit_to_mtbf_seconds(1.0, devices=0)
        with pytest.raises(ValueError):
            mtbf_seconds_to_fit(1.0, devices=-1)

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValueError):
            mtbf_seconds_to_fit(0.0)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("4 KiB", 4 * KiB),
            ("4kib", 4 * KiB),
            ("16 MiB", 16 * MiB),
            ("2GiB", 2 * GiB),
            ("1.5 MiB", int(1.5 * MiB)),
            ("10 kb", 10_000),
            ("3 mb", 3_000_000),
            ("7b", 7),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_accepts_numbers(self):
        assert parse_size(4096) == 4096
        assert parse_size(1.5e3) == 1500

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")


class TestPretty:
    def test_pretty_bytes_picks_unit(self):
        assert pretty_bytes(512) == "512 B"
        assert "KiB" in pretty_bytes(8 * KiB)
        assert "MiB" in pretty_bytes(3 * MiB)
        assert "GiB" in pretty_bytes(5 * GiB)

    def test_pretty_seconds_scales(self):
        assert "us" in pretty_seconds(5e-6)
        assert "ms" in pretty_seconds(0.005)
        assert pretty_seconds(1.5).endswith(" s")
        assert "min" in pretty_seconds(300)
        assert "h" in pretty_seconds(2 * 7200)
        assert pretty_seconds(float("inf")) == "inf"

    def test_constants_consistent(self):
        assert YEARS == pytest.approx(365.25 * 24 * HOURS)
        assert FIT_PER_HOUR == 1e-9
