#!/usr/bin/env python
"""Replay a recorded failure log through ACR (paper §2.2's data-driven view).

The adaptivity argument starts from real failure logs (Schroeder & Gibson):
real machines fail with a *decreasing* hazard that a Weibull describes better
than an exponential.  This example (1) synthesizes a LANL-like CSV failure
log, (2) fits its inter-arrivals offline to confirm the Weibull preference,
(3) replays it through the full ACR stack with the adaptive controller, and
(4) shows the checkpoint period stretching as the hazard decays.

Run:  python examples/failure_trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import ACR, ACRConfig
from repro.faults import (
    fit_interarrivals,
    load_trace,
    save_trace,
    synthesize_lanl_like_trace,
    trace_to_plan,
)
from repro.harness import format_table
from repro.model import ResilienceScheme

HORIZON = 700.0
NODES_PER_REPLICA = 8


def main() -> None:
    # 1) A failure log, as a real facility would record it.
    records = synthesize_lanl_like_trace(
        horizon=HORIZON, expected_failures=12, shape=0.6,
        nodes=2 * NODES_PER_REPLICA, seed=9,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "failures.csv"
        save_trace(records, path)
        print(f"wrote {len(records)} failures to {path.name}:")
        print("  " + ", ".join(f"{r.time:.0f}s" for r in records))
        records = load_trace(path)  # round-trip, as a consumer would

    # 2) Offline distribution fit - the §2.2 premise.  Distribution tests
    # need statistics, so fit a season-long log from the same machine (the
    # 12-failure replay window alone is too short to discriminate).
    season = synthesize_lanl_like_trace(
        horizon=50 * HORIZON, expected_failures=400, shape=0.6,
        nodes=2 * NODES_PER_REPLICA, seed=9,
    )
    fit = fit_interarrivals([r.time for r in season])
    print(format_table(
        ["statistic", "value"],
        [["Weibull shape (k < 1 = decreasing hazard)", round(fit.weibull_shape, 3)],
         ["Weibull scale (s)", round(fit.weibull_scale, 1)],
         ["exponential mean gap (s)", round(fit.exponential_mean, 1)],
         ["better fit", "Weibull" if fit.prefers_weibull else "exponential"]],
        title="Offline fit of a season-long failure log (400 events)",
    ))

    # 3) Replay through ACR with the adaptive checkpoint controller.
    plan = trace_to_plan(records, NODES_PER_REPLICA)
    config = ACRConfig(
        scheme=ResilienceScheme.MEDIUM, adaptive=True,
        adaptive_initial_interval=6.0, adaptive_min_interval=2.0,
        adaptive_max_interval=120.0, tasks_per_node=1, app_scale=1e-4,
        seed=9, spare_nodes=4 * len(records), heartbeat_interval=0.5,
    )
    acr = ACR("jacobi3d-charm", nodes_per_replica=NODES_PER_REPLICA,
              config=config, injection_plan=plan)
    report = acr.run(until=HORIZON, max_events=100_000_000)

    # 4) The adaptation, visualized.
    print(format_table(
        ["metric", "value"],
        [["failures detected & survived",
          f"{report.hard_detected}/{report.hard_injected}"],
         ["recoveries", str(report.recoveries)],
         ["checkpoints completed", report.checkpoints_completed]],
        title="Replay under ACR (medium scheme, adaptive interval)",
    ))
    intervals = [v for _, v in report.interval_history]
    if intervals:
        print(f"\nadaptive interval: start {intervals[0]:.1f} s "
              f"-> min {min(intervals):.1f} s -> end {intervals[-1]:.1f} s")
    print("\ntimeline ('X' failure, '|' checkpoint):")
    print(report.timeline.render_ascii(width=100, horizon=HORIZON))


if __name__ == "__main__":
    main()
