#!/usr/bin/env python
"""The 4-phase checkpoint consensus, step by step (paper §2.2, Fig. 3).

Eight tasks on four nodes progress at deliberately different speeds with no
global synchronization.  We request a checkpoint mid-flight and watch the
protocol: progress tracking, the asynchronous max reduction with tentative
pauses, the decision broadcast, and the final all-ready barrier — after which
every task sits at exactly the same iteration, so the coordinated checkpoint
is consistent and no in-flight message is lost.

Run:  python examples/consensus_walkthrough.py
"""

from repro.core.consensus import ConsensusController
from repro.runtime import Node, Simulator, Task, Transport


def main() -> None:
    sim = Simulator()
    transport = Transport(sim)
    nodes = [Node(i, 0, i, sim, transport) for i in range(4)]

    # Task speeds differ by up to 40%: the skew the protocol exists for.
    def iteration_time(task_id, iteration):
        return 0.1 * (1.0 + 0.4 * ((task_id * 13 + iteration * 7) % 10) / 10)

    tasks = []
    for tid in range(8):
        node = nodes[tid // 2]
        left, right = (tid - 1) % 8, (tid + 1) % 8
        task = Task(tid, node,
                    neighbors=[(left // 2, left), (right // 2, right)],
                    iteration_time=iteration_time)
        node.add_task(task)
        tasks.append(task)

    controller = ConsensusController({n.node_id: n for n in nodes})
    for n in nodes:
        n.start_tasks()

    sim.run(until=2.0)
    snapshot = [t.progress for t in tasks]
    print(f"t={sim.now:.2f}s  task progress before the request: {snapshot}")
    print(f"          (skew of {max(snapshot) - min(snapshot)} iterations, "
          "no barrier anywhere)")

    decisions = []
    controller.start_round([n.node_id for n in nodes],
                           lambda rid, it: decisions.append((sim.now, it)))
    print("\nPhase 1: checkpoint requested; nodes snapshot their local max")
    print("Phase 2: async tree reduction finds the global max; tasks reaching")
    print("         their local max pause tentatively")
    sim.run(until=6.0)

    when, decided = decisions[0]
    print(f"Phase 3: decision broadcast -> checkpoint iteration = {decided}")
    print("Phase 4: tasks run exactly up to it, then report ready")
    print(f"\nt={when:.2f}s  consensus complete")
    print(f"          task progress now: {[t.progress for t in tasks]}")
    assert all(t.progress == decided for t in tasks)
    print(f"          every task paused at iteration {decided}: the checkpoint")
    print("          cut is consistent (the paper's hang scenario is impossible).")

    for t in tasks:
        t.resume()
    sim.run(until=8.0)
    print(f"\nt={sim.now:.2f}s  resumed; progress: {[t.progress for t in tasks]}")


if __name__ == "__main__":
    main()
