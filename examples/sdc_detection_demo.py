#!/usr/bin/env python
"""SDC detection at the PUP level (paper §2.1, §4.1, §4.2).

Walks through what ACR's runtime does at every checkpoint:

1. serialize both replicas' state via their ``pup`` description,
2. compare the buddy checkpoints field by field (``PUPer::checker``),
3. alternatively, compare 32-byte Fletcher digests (the low-bandwidth path),
4. show the user-customizable escape hatches: per-field tolerances for
   floating-point round-off, and ``skip_compare`` for replica-local data.

Run:  python examples/sdc_detection_demo.py
"""

import numpy as np

from repro import compare_checkpoints, make_app, pack
from repro.faults import BitFlipInjector
from repro.pup import checkpoint_checksum, compare_checksums
from repro.util.rng import RngStream


def main() -> None:
    # Two replicas of the same application: bit-identical by construction.
    replica1 = make_app("lulesh", nodes_per_replica=2, scale=1e-4, seed=42)
    replica2 = make_app("lulesh", nodes_per_replica=2, scale=1e-4, seed=42)
    for app in (replica1, replica2):
        app.advance_to(10)

    local = pack(replica2.shard(0))
    remote = pack(replica1.shard(0))
    result = compare_checkpoints(local, remote)
    print(f"1) healthy replicas: {result.summary()}")

    # A cosmic ray visits replica 1.
    flip = BitFlipInjector(RngStream(0, "demo")).inject(replica1.shard(0))
    print(f"\n2) injected bit flip: field={flip.field_name!r} "
          f"byte={flip.byte_index} bit={flip.bit_index} "
          f"({flip.old_byte:#04x} -> {flip.new_byte:#04x})")

    corrupted = pack(replica1.shard(0))
    result = compare_checkpoints(local, corrupted)
    print(f"   full comparison:   {result.summary()}")
    worst = result.mismatches[0]
    print(f"   -> {worst.n_differing} byte(s) differ in {worst.name!r}, "
          f"max |delta| = {worst.max_abs_diff:.3e}")

    digest = checkpoint_checksum(corrupted.buffer)
    checksum_result = compare_checksums(local, digest)
    print(f"   Fletcher digest ({len(digest)} bytes on the wire): "
          f"match={checksum_result.match}")

    # Tolerant comparison: §4.1's customizable checker.
    print("\n3) tolerance and skip_compare:")

    class Sensor:
        def __init__(self, noise):
            self.field = np.linspace(0, 1, 16)
            self.field[3] *= 1.0 + noise
            self.wallclock = float(noise * 1e6)  # replica-local timer

        def pup(self, p):
            p.pup_array("field", self.field, rtol=1e-6)
            p.pup_float("wallclock", self.wallclock, skip_compare=True)

    a, b = pack(Sensor(0.0)), pack(Sensor(1e-9))
    print(f"   1e-9 relative drift under rtol=1e-6: "
          f"match={compare_checkpoints(a, b).match} (round-off forgiven)")
    c = pack(Sensor(1e-3))
    print(f"   1e-3 relative drift:                 "
          f"match={compare_checkpoints(a, c).match} (real corruption flagged)")


if __name__ == "__main__":
    main()
