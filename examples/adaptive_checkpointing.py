#!/usr/bin/env python
"""Adaptive checkpoint intervals under a decreasing failure rate (Fig. 12).

Failures are injected from a Weibull process with shape 0.6 — the
decreasing-hazard behaviour Schroeder & Gibson observed in real HPC failure
logs.  ACR fits the observed failure stream online (Crow-AMSAA maximum
likelihood) and re-derives the Daly period from the *current* MTBF estimate:
checkpoints come every few seconds during the early failure burst and stretch
out as the machine calms down.

Run:  python examples/adaptive_checkpointing.py
"""

from repro.harness import format_table
from repro.harness.figures import fig12_data


def main() -> None:
    result = fig12_data(
        nodes_per_replica=8,
        horizon=900.0,
        failures=14,
        shape=0.6,
        seed=3,
        initial_interval=6.0,
    )
    report = result.report

    print("=== Adaptivity of ACR to a changing failure rate ===")
    print(format_table(
        ["metric", "value"],
        [
            ["failures injected", report.hard_injected],
            ["failures detected & survived", report.hard_detected],
            ["recoveries", str(report.recoveries)],
            ["checkpoints completed", report.checkpoints_completed],
            ["mean checkpoint gap, first fifth (s)",
             round(result.early_mean_interval, 2)],
            ["mean checkpoint gap, last fifth (s)",
             round(result.late_mean_interval, 2)],
        ],
    ))
    print()
    print("timeline ('X' failure injected, '|' checkpoint performed):")
    print(result.ascii_timeline)
    print()
    trajectory = [v for _, v in result.intervals]
    print(f"fitted interval trajectory: starts {trajectory[0]:.1f} s, "
          f"dips to {min(trajectory):.1f} s during the burst, "
          f"ends {trajectory[-1]:.1f} s")
    print()
    print("More failures at the beginning -> more checkpoints at the beginning;")
    print("fewer towards the end, exactly the behaviour of the paper's Figure 12.")


if __name__ == "__main__":
    main()
