#!/usr/bin/env python
"""Explore the Section-5 performance/reliability model.

Answers the model's central questions for a machine you describe:
how often to checkpoint, what each resilience scheme costs, and how much
undetected-SDC risk the weaker schemes carry (Table 1, Fig. 7).

Run:  python examples/model_explorer.py
"""

from repro import ModelParams, ResilienceScheme, optimal_tau
from repro.harness import format_table
from repro.model import solve_scheme, undetected_sdc_probability
from repro.util.units import HOURS


def explore(sockets_per_replica: int, delta: float) -> list[list]:
    params = ModelParams(
        work=24 * HOURS,
        delta=delta,
        sockets_per_replica=sockets_per_replica,
        sdc_fit_socket=100.0,
    )
    rows = []
    for scheme in ResilienceScheme:
        tau = optimal_tau(params, scheme)
        sol = solve_scheme(params, scheme, tau)
        rows.append([
            sockets_per_replica, delta, str(scheme), round(tau, 1),
            round(sol.total_time / HOURS, 2),
            round(sol.utilization, 4),
            f"{undetected_sdc_probability(params, scheme, tau):.2e}",
        ])
    return rows


def main() -> None:
    rows = []
    for sockets in (1024, 16384, 262144):
        for delta in (15.0, 180.0):
            rows += explore(sockets, delta)
    print(format_table(
        ["sockets/replica", "delta (s)", "scheme", "tau_opt (s)",
         "total time (h)", "utilization", "P(undetected SDC)"],
        rows,
        title="Section-5 model: 24 h job, M_H = 50 y/socket, 100 FIT/socket",
    ))
    print()
    print("Reading the table like the paper does:")
    print(" * strong checkpoints most often (smallest tau) - it pays rework")
    print("   of (tau+delta)/2 per hard error;")
    print(" * with delta = 15 s every scheme keeps > 45% utilization at scale;")
    print(" * with delta = 180 s strong sinks below 40% while weak/medium hold;")
    print(" * only strong keeps P(undetected SDC) identically zero.")


if __name__ == "__main__":
    main()
