#!/usr/bin/env python
"""Quickstart: run a replicated application under ACR with injected faults.

This is the 60-second tour: Jacobi3D runs on two 4-node replicas, a silent
data corruption and a fail-stop node crash are injected, ACR detects both
(checkpoint comparison for the SDC, buddy heartbeats for the crash), recovers
automatically, and the final result is bit-identical to a failure-free run.

Run:  python examples/quickstart.py
"""

from repro import FaultEvent, FaultKind, InjectionPlan, run_acr_experiment


def main() -> None:
    plan = InjectionPlan([
        # Flip one random bit in the checkpointable state of replica 0, node 1.
        FaultEvent(time=3.0, kind=FaultKind.SDC, replica=0, node_id=1),
        # Fail-stop replica 1, node 2 (it silently stops communicating).
        FaultEvent(time=8.0, kind=FaultKind.HARD, replica=1, node_id=2),
    ])

    result = run_acr_experiment(
        "jacobi3d-charm",
        nodes_per_replica=4,
        scheme="strong",            # full SDC protection (§2.3)
        total_iterations=200,
        checkpoint_interval=2.0,    # simulated seconds
        injection_plan=plan,
        seed=7,
    )
    report = result.report

    print("=== ACR quickstart ===")
    print(f"completed:            {report.completed}")
    print(f"simulated time:       {report.final_time:.2f} s")
    print(f"checkpoints:          {report.checkpoints_completed}")
    print(f"SDC injected/detected: {report.sdc_injected}/{report.sdc_detected}")
    print(f"hard faults detected: {report.hard_detected}")
    print(f"recoveries:           {report.recoveries}")
    print(f"rework iterations:    {report.rework_iterations}")
    print(f"result bit-correct:   {report.result_correct}")
    print()
    print("timeline ('X' failure, '|' checkpoint):")
    print(report.timeline.render_ascii(width=80))

    assert report.result_correct, "ACR must recover to the failure-free result"


if __name__ == "__main__":
    main()
