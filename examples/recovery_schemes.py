#!/usr/bin/env python
"""The three resilience schemes head-to-head (paper §2.3, Figures 4 & 5).

One fault scenario — an SDC in the soon-to-be-healthy replica followed by a
node crash in the other — run under strong, medium, and weak recovery.  The
output shows the paper's trade-off live:

* strong: detects the SDC (it compares against the pre-crash checkpoint),
  reworks the most, finishes correct;
* medium: recovers fast from its immediate post-crash checkpoint, but the
  corruption inside the window is silently adopted by both replicas;
* weak: zero-overhead recovery at the next periodic checkpoint, same window.

LeanMD is used because molecular-dynamics trajectories are chaotic — a single
flipped bit visibly diverges the final state (in a contracting solver like
Jacobi the corruption can be numerically forgiven).

Run:  python examples/recovery_schemes.py
"""

from repro import FaultEvent, FaultKind, InjectionPlan, run_acr_experiment
from repro.harness import format_table


def main() -> None:
    plan = InjectionPlan([
        FaultEvent(time=5.0, kind=FaultKind.SDC, replica=0, node_id=1),
        FaultEvent(time=6.0, kind=FaultKind.HARD, replica=1, node_id=2),
    ])

    rows = []
    for scheme in ("strong", "medium", "weak"):
        report = run_acr_experiment(
            "leanmd",
            nodes_per_replica=4,
            scheme=scheme,
            checkpoint_interval=10.0,
            total_iterations=400,
            app_scale=2e-3,
            injection_plan=plan,
            seed=11,
        ).report
        rows.append([
            scheme,
            f"{report.final_time:.1f}",
            report.checkpoints_completed,
            report.sdc_detected,
            report.rework_iterations,
            str(report.recoveries),
            report.result_correct,
        ])

    print(format_table(
        ["scheme", "time (s)", "ckpts", "SDC detected", "rework iters",
         "recoveries", "result correct"],
        rows,
        title="Recovery schemes under the same fault scenario "
              "(SDC at t=5 in the healthy replica, crash at t=6)",
    ))
    print()
    print("Strong pays rework for 100% SDC protection; medium and weak trade a")
    print("detection window (tau/2 and tau on average) for faster forward progress -")
    print("here the corruption landed inside that window and survived undetected.")


if __name__ == "__main__":
    main()
