#!/usr/bin/env python
"""Topology-aware replica mapping on the 3D torus (paper §4.2, Figs. 6 & 8).

Shows (1) the per-link message counts of Figure 6 on a 512-node partition and
(2) how the mapping choice changes a full 16 MiB/node checkpoint exchange
across machine sizes — the default TXYZ split funnels all buddy traffic
through the bisection (load grows with the Z dimension), while column/mixed
interleavings keep it flat.

Run:  python examples/topology_mapping.py
"""

from repro import CheckpointProfile, CostModel, Torus3D, build_mapping, intrepid_allocation
from repro.harness import format_table
from repro.util.units import MiB


def figure6_link_counts() -> None:
    torus = Torus3D((8, 8, 8))
    rows = []
    for scheme in ("default", "column", "mixed"):
        mapping = build_mapping(torus, scheme)
        loads = mapping.exchange_loads(1)
        rows.append([scheme, loads.max_load(),
                     int(mapping.buddy_distance().max()),
                     str(list(loads.plane_loads(2)))])
    print(format_table(
        ["mapping", "max msgs/link", "buddy hops", "per-column link profile"],
        rows,
        title="Figure 6: inter-replica messages per link (512 nodes, 8x8x8)",
    ))


def figure8_checkpoint_costs() -> None:
    cost = CostModel()
    profile = CheckpointProfile(nbytes_per_node=16 * MiB)  # Jacobi3D-class
    rows = []
    for cores in (1024, 4096, 16384, 65536):
        alloc = intrepid_allocation(cores)
        entry = [f"{cores // 1024}K", str(alloc.torus.dims)]
        for scheme in ("default", "mixed", "column"):
            mapping = build_mapping(alloc.torus, scheme)
            entry.append(round(cost.exchange_time(
                mapping, profile.nbytes_per_node), 3))
        rows.append(entry)
    print(format_table(
        ["cores/replica", "torus", "default (s)", "mixed (s)", "column (s)"],
        rows,
        title="Checkpoint transfer time by mapping (16 MiB per node)",
    ))
    print()
    print("Default grows ~4x from 1K to 4K cores/replica (Z: 8 -> 32) then")
    print("saturates; column and mixed stay flat - the Figure 8 shape.")


def main() -> None:
    figure6_link_counts()
    print()
    figure8_checkpoint_costs()


if __name__ == "__main__":
    main()
