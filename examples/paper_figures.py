#!/usr/bin/env python
"""Render the paper's evaluation figures as terminal charts, end to end.

One command walks the full evaluation: the Figure-6 link-load maps, the
Figure-7 utilization curves from the Section-5 model, a Figure-8 checkpoint
decomposition panel, a Figure-10 restart panel, and the Figure-12 adaptivity
run on the live discrete-event stack.  (The benchmark suite asserts the
numbers; this script is for looking at them.)

Run:  python examples/paper_figures.py
"""

from repro.harness.figures import fig8_data, fig10_data, fig12_data
from repro.model.surfaces import fig7_curves
from repro.viz import (
    plot_fig6_heatmap,
    plot_fig7_utilization,
    plot_fig8_bars,
    plot_fig10_bars,
    plot_fig12_intervals,
)


def rule(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def main() -> None:
    rule("Figure 6 - inter-replica link loads on 512 BG/P nodes")
    for scheme in ("default", "column", "mixed"):
        print(plot_fig6_heatmap(scheme=scheme))
        print()

    rule("Figure 7(a) - model utilization vs machine size")
    points = fig7_curves(sockets_axis=(1024, 4096, 16384, 65536, 262144))
    for delta in (15.0, 180.0):
        print(plot_fig7_utilization(points, delta))
        print()

    rule("Figure 8 - single-checkpoint overhead decomposition (64K cores/replica)")
    rows8 = fig8_data(apps=("jacobi3d-charm", "lulesh", "leanmd"),
                      cores_axis=(65536,))
    for app in ("jacobi3d-charm", "lulesh", "leanmd"):
        print(plot_fig8_bars(rows8, app, 65536))
        print()

    rule("Figure 10 - single-restart overhead decomposition (64K cores/replica)")
    rows10 = fig10_data(apps=("jacobi3d-charm", "leanmd"), cores_axis=(65536,))
    for app in ("jacobi3d-charm", "leanmd"):
        print(plot_fig10_bars(rows10, app, 65536))
        print()

    rule("Figure 12 - adaptivity to a decreasing failure rate (live DES run)")
    result = fig12_data(nodes_per_replica=8, horizon=600.0, failures=10, seed=3)
    print(plot_fig12_intervals(result))
    report = result.report
    print(f"\n({report.hard_detected}/{report.hard_injected} failures survived, "
          f"{report.checkpoints_completed} checkpoints, recoveries: "
          f"{report.recoveries})")


if __name__ == "__main__":
    main()
