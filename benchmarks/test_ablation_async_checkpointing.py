"""Ablation — blocking vs semi-blocking checkpointing (paper §4.2 future work).

"Another way to reduce network congestion is to use asynchronous
checkpointing that overlaps the checkpoint transmission with application
execution.  We leave implementation and analysis of this aspect for future
work."  Here is that analysis, on the full DES stack: the same workload,
fault plan, and interval, blocking vs semi-blocking.  Blocking charges
pack + transfer + compare to the application; semi-blocking charges only the
local pack, finishing the run sooner at the price of a longer SDC-detection
latency (the compare completes while the application is already past the
checkpoint).
"""

from repro.core import ACR, ACRConfig
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.harness.report import format_table


def _run(async_mode: bool):
    plan = InjectionPlan([
        FaultEvent(time=3.0, kind=FaultKind.SDC, replica=0, node_id=1),
        FaultEvent(time=9.0, kind=FaultKind.HARD, replica=1, node_id=2),
    ])
    config = ACRConfig(checkpoint_interval=2.0, total_iterations=600,
                       tasks_per_node=1, app_scale=1e-4, seed=7,
                       spare_nodes=8, async_checkpointing=async_mode)
    acr = ACR("jacobi3d-charm", nodes_per_replica=4, config=config,
              injection_plan=plan)
    return acr.run(until=3000.0, max_events=50_000_000)


def _both():
    return {"blocking": _run(False), "semi-blocking": _run(True)}


def test_ablation_async_checkpointing(benchmark, emit):
    results = benchmark.pedantic(_both, iterations=1, rounds=1)

    emit(format_table(
        ["mode", "makespan (s)", "ckpts", "blocked by ckpt (s)",
         "ckpt work total (s)", "SDC detected", "correct"],
        [[name, round(r.final_time, 2), r.checkpoints_completed,
          round(r.checkpoint_blocking_time, 3), round(r.checkpoint_time, 3),
          r.sdc_detected, r.result_correct]
         for name, r in results.items()],
        title="Ablation: blocking vs semi-blocking (asynchronous) checkpointing "
              "(Jacobi3D, same faults, same 2 s interval)",
    ))

    blocking = results["blocking"]
    semi = results["semi-blocking"]
    # Both survive the same faults with bit-correct results.
    assert blocking.result_correct and semi.result_correct
    assert blocking.sdc_detected >= 1 and semi.sdc_detected >= 1
    # Semi-blocking blocks the application for a fraction of the checkpoint
    # work and finishes the same job sooner.
    assert semi.checkpoint_blocking_time < 0.5 * semi.checkpoint_time
    assert blocking.checkpoint_blocking_time == blocking.checkpoint_time
    assert semi.final_time < blocking.final_time
