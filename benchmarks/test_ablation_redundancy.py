"""Ablation — dual redundancy vs TMR (paper §3.4 design choice).

"The trade off to consider between dual redundancy and TMR is between
re-executing the work or spending another 33% of system resources on
redundancy.  We have chosen the former option assuming good scalability for
most applications and relatively small number of SDCs."

We sweep the per-socket SDC rate and locate the crossover: below it, dual
redundancy's occasional rollback costs less than TMR's standing 33% tax;
above it, TMR's vote-in-place wins.  At the paper's nominal rates (100 /
10,000 FIT) dual redundancy is clearly the right call — the paper's choice.
"""

from repro.harness.report import format_table
from repro.model.alternatives import dual_vs_tmr_utilization, sdc_crossover_fit, solve_tmr
from repro.model.params import ModelParams
from repro.util.units import HOURS

SOCKETS = 65536
FIT_SWEEP = (10.0, 100.0, 1e3, 1e4, 1e5, 3e5, 1e6)


def _params(fit: float) -> ModelParams:
    return ModelParams(work=24 * HOURS, delta=15.0,
                       sockets_per_replica=SOCKETS, sdc_fit_socket=fit)


def _sweep():
    rows = []
    for fit in FIT_SWEEP:
        p = _params(fit)
        dual, tmr = dual_vs_tmr_utilization(p)
        tmr_sol = solve_tmr(p)
        rows.append([fit, round(dual, 4), round(tmr, 4),
                     "dual" if dual >= tmr else "TMR",
                     f"{tmr_sol.vulnerability:.2e}"])
    return rows


def test_ablation_dual_vs_tmr(benchmark, emit):
    rows = benchmark(_sweep)
    crossover = sdc_crossover_fit(_params(100.0))

    emit(format_table(
        ["SDC FIT/socket", "dual (strong) util", "TMR util", "winner",
         "TMR residual vulnerability"],
        rows,
        title=f"Ablation: dual redundancy vs TMR, {SOCKETS} sockets/replica "
              f"(crossover at ~{crossover:.0f} FIT/socket)",
    ))

    by_fit = {r[0]: r for r in rows}
    # At the paper's nominal SDC rates, dual redundancy wins - the §3.4 call.
    assert by_fit[100.0][3] == "dual"
    assert by_fit[1e4][3] == "dual"
    # At extreme corruption rates the 33% tax beats constant rollback.
    assert by_fit[1e6][3] == "TMR"
    # The crossover sits between those regimes.
    assert crossover is not None and 1e4 < crossover < 3e5
    # TMR's utilization is flat in the SDC rate (vote corrects in place).
    assert by_fit[10.0][2] == by_fit[1e6][2]
