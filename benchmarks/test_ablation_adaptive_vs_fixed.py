"""Ablation — adaptive vs fixed checkpoint intervals (paper §2.2).

"Dynamically scheduling checkpoints has shown benefits in such scenarios in
comparison to a fixed checkpoint interval."

The same bounded job runs under the same Weibull(0.6) failure schedule with
(a) a too-eager fixed interval, (b) a too-lazy fixed interval, and (c) the
adaptive controller.  The fixed settings each lose on one side — checkpoint
overhead when eager, rework when lazy — while the adaptive run tracks the
observed failure rate and lands at (or near) the best makespan without the
user guessing an interval.
"""

from repro.core import ACR, ACRConfig
from repro.faults import FaultKind, WeibullProcess, draw_plan
from repro.harness.report import format_table
from repro.model import ResilienceScheme
from repro.util.rng import RngStream

NODES = 4
ITERATIONS = 6000
HORIZON = 20_000.0


def _plan():
    rng = RngStream(21, "adaptive-vs-fixed")
    process = WeibullProcess.with_expected_count(
        0.6, horizon=400.0, expected_failures=10, rng=rng.child("times"))
    return draw_plan(process, kind=FaultKind.HARD, horizon=400.0,
                     nodes_per_replica=NODES, rng=rng.child("victims"))


def _run(label: str, **cfg):
    # Strong scheme: hard errors roll the crashed replica back to the last
    # checkpoint, so the interval directly controls the rework exposure.
    defaults = dict(scheme=ResilienceScheme.STRONG, total_iterations=ITERATIONS,
                    tasks_per_node=1, app_scale=1e-4, seed=21, spare_nodes=64)
    defaults.update(cfg)
    acr = ACR("jacobi3d-charm", nodes_per_replica=NODES,
              config=ACRConfig(**defaults), injection_plan=_plan())
    return acr.run(until=HORIZON, max_events=100_000_000)


def _sweep():
    return {
        "fixed 2 s (eager)": _run("eager", checkpoint_interval=2.0),
        "fixed 60 s (lazy)": _run("lazy", checkpoint_interval=60.0),
        "adaptive": _run("adaptive", adaptive=True,
                         adaptive_initial_interval=6.0,
                         adaptive_min_interval=2.0,
                         adaptive_max_interval=120.0),
    }


def test_ablation_adaptive_vs_fixed(benchmark, emit):
    results = benchmark.pedantic(_sweep, iterations=1, rounds=1)

    emit(format_table(
        ["policy", "makespan (s)", "ckpts", "ckpt time (s)", "rework iters",
         "correct"],
        [[name, round(r.final_time, 1), r.checkpoints_completed,
          round(r.checkpoint_time, 2), r.rework_iterations, r.result_correct]
         for name, r in results.items()],
        title="Ablation: fixed vs adaptive checkpoint interval "
              "(10 Weibull(0.6) failures in the first ~400 s)",
    ))

    eager = results["fixed 2 s (eager)"]
    lazy = results["fixed 60 s (lazy)"]
    adaptive = results["adaptive"]
    for r in results.values():
        assert r.completed and r.result_correct
    # Each fixed policy loses on its predicted axis.
    assert eager.checkpoint_time > 2 * adaptive.checkpoint_time
    assert lazy.rework_iterations > adaptive.rework_iterations
    # Adaptive lands within striking distance of the best fixed makespan
    # without anyone choosing an interval.
    best_fixed = min(eager.final_time, lazy.final_time)
    assert adaptive.final_time < 1.15 * best_fixed
