"""Ablation — checkpoint-based consistency vs message cloning (paper §3.1).

ACR's first design choice: keep the replicas *independent* and compare
checkpoints, instead of rMPI/P2P-MPI-style message cloning which "requires
the progress of every rank in one replica to be completely synchronized with
the corresponding rank in the other replica ... especially if a dynamic
application performs a large number of receives from unknown sources."

We run a wildcard-heavy master/worker program under both strategies and
measure what the paper argues:

* independent replicas (ACR's model) run at full speed — but genuinely
  diverge on racy programs, which is why ACR detects divergence with
  checkpoint comparison instead of preventing it;
* message cloning forces bit-identical message orders, at the price of one
  cross-replica directive per wildcard receive and a mirror that can never
  run ahead of the leader.
"""

from repro.ampi import Compute, Recv, Send
from repro.ampi.rmpi import MessageCloningReplication
from repro.harness.report import format_table

SIZE = 8
ROUNDS = 6
DIRECTIVE_LATENCY = 2e-3


def wildcard_master_worker(ctx):
    """Master ingests worker reports from MPI_ANY_SOURCE, round after round."""
    if ctx.rank == 0:
        seen = []
        for _ in range(ROUNDS * (ctx.size - 1)):
            seen.append((yield Recv(None)))
        return tuple(seen)
    for r in range(ROUNDS):
        yield Compute(0.002 * (1 + (ctx.rank * 5 + r) % 4))
        yield Send(0, (ctx.rank, r))
    return ctx.rank


def _compare():
    rep = MessageCloningReplication(
        SIZE, wildcard_master_worker,
        directive_latency=DIRECTIVE_LATENCY, jitter_amplitude=0.4, seed=11)
    return {"independent (ACR-style)": rep.run_independent(),
            "message cloning (rMPI-style)": rep.run()}


def test_ablation_message_cloning(benchmark, emit):
    results = benchmark(_compare)

    emit(format_table(
        ["strategy", "finish (s)", "mirror lag (s)", "directives",
         "replicas agree"],
        [[name, round(r.finish_time, 5), round(r.mirror_lag, 5),
          r.directives_sent, r.consistent]
         for name, r in results.items()],
        title=(f"Ablation: replica-consistency strategies, "
               f"{SIZE} ranks x {ROUNDS} rounds of MPI_ANY_SOURCE traffic")))

    free = results["independent (ACR-style)"]
    cloned = results["message cloning (rMPI-style)"]
    # Independence is free but racy: the replicas saw different orders.
    assert free.directives_sent == 0
    assert not free.consistent
    # Cloning pays one directive per wildcard receive and trails the leader,
    # but produces identical executions.
    assert cloned.directives_sent == ROUNDS * (SIZE - 1)
    assert cloned.consistent
    assert cloned.finish_time > free.finish_time
    assert cloned.mirror_lag > 0
