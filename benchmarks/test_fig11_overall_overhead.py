"""Figure 11 — overall ACR overhead (checkpoint + restart + rework).

Paper (same configuration as Fig. 9): despite its faster restarts, the strong
scheme ends up costliest overall — its extra checkpoints and hard-error
rework dominate — yet stays under ~3% for Jacobi3D and well under 1% for
LeanMD; the optimizations cut it roughly in half (1.4% / 0.2%).
"""

import pytest

from repro.harness.figures import fig9_fig11_data
from repro.harness.report import format_table


def test_fig11_overall_overhead(benchmark, emit):
    rows = benchmark(fig9_fig11_data, ("jacobi3d-charm", "leanmd"),
                     (1024, 4096, 16384))

    for app in ("jacobi3d-charm", "leanmd"):
        emit(format_table(
            ["sockets/replica", "variant", "scheme", "overall overhead %"],
            [[r.sockets_per_replica, r.variant, r.scheme,
              round(r.overall_overhead_pct, 3)]
             for r in rows if r.app == app],
            title=f"Figure 11 ({app}): overall overhead per replica",
        ))

    def pick(app, sockets, scheme, variant):
        for r in rows:
            if (r.app, r.sockets_per_replica, r.scheme, r.variant) == (
                    app, sockets, scheme, variant):
                return r
        raise KeyError

    # Strong is the worst overall despite the cheapest restart (§6.3).
    for app in ("jacobi3d-charm", "leanmd"):
        for sockets in (4096, 16384):
            strong = pick(app, sockets, "strong", "default").overall_overhead_pct
            for other in ("medium", "weak"):
                assert strong >= pick(app, sockets, other,
                                      "default").overall_overhead_pct - 1e-9

    # Absolute levels: <3% Jacobi3D, <1% LeanMD (paper: ~0.45%).
    jac = pick("jacobi3d-charm", 16384, "strong", "default")
    lean = pick("leanmd", 16384, "strong", "default")
    assert jac.overall_overhead_pct < 3.0
    assert lean.overall_overhead_pct < 1.0

    # Optimizations roughly halve the overall overhead (paper: 1.4% / 0.2%).
    jac_opt = pick("jacobi3d-charm", 16384, "strong", "column")
    assert jac_opt.overall_overhead_pct < 0.75 * jac.overall_overhead_pct
    lean_opt = pick("leanmd", 16384, "strong", "default+checksum")
    assert lean_opt.overall_overhead_pct < lean.overall_overhead_pct
