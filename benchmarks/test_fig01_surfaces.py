"""Figure 1 — utilization & vulnerability surfaces for the three alternatives.

Paper: (a) no fault tolerance collapses to ~0 utilization between 4K and 16K
sockets while vulnerability soars; (b) checkpoint/restart restores utilization
but not vulnerability; (c) ACR removes vulnerability entirely at a roughly
constant ~≤50% utilization (the replication cost), "comparable to other cases
at scale".  Job: 120 hours.
"""

from repro.harness.report import format_table
from repro.model.surfaces import fig1_surfaces


def _rows(panel):
    return [[p.sockets, p.sdc_fit, round(p.utilization, 4),
             round(p.vulnerability, 4)] for p in panel]


def test_fig01_surfaces(benchmark, emit):
    surfaces = benchmark(fig1_surfaces)

    headers = ["sockets", "SDC FIT/socket", "utilization", "vulnerability"]
    emit(format_table(headers, _rows(surfaces.no_ft),
                      title="Figure 1(a): no fault-tolerance protection"))
    emit(format_table(headers, _rows(surfaces.checkpoint_only),
                      title="Figure 1(b): hard-error checkpoint-based protection"))
    emit(format_table(headers, _rows(surfaces.acr),
                      title="Figure 1(c): ACR (SDC + hard error protection)"))

    by_key = {(p.sockets, p.sdc_fit): p for p in surfaces.no_ft}
    # (a) utilization collapses from 4K to 16K sockets.
    assert by_key[(4096, 100.0)].utilization > 0.4
    assert by_key[(16384, 100.0)].utilization < 0.1
    # (b) checkpointing restores utilization but not vulnerability.
    ck = {(p.sockets, p.sdc_fit): p for p in surfaces.checkpoint_only}
    assert ck[(16384, 100.0)].utilization > 0.8
    assert ck[(16384, 10000.0)].vulnerability > 0.5
    # (c) ACR: vulnerability gone, utilization nearly flat across scale at
    # the paper's nominal 100 FIT; even at the extreme corner (1M sockets,
    # 10^4 FIT — an SDC rollback every few minutes) it keeps making progress
    # while both baselines are dead (utilization ~0) or certainly wrong
    # (vulnerability ~1).
    acr = {(p.sockets, p.sdc_fit): p for p in surfaces.acr}
    assert all(p.vulnerability == 0.0 for p in surfaces.acr)
    drop = acr[(4096, 100.0)].utilization - acr[(1048576, 100.0)].utilization
    assert drop < 0.15
    corner = acr[(1048576, 10000.0)]
    assert corner.utilization > 0.1
    assert by_key[(1048576, 10000.0)].utilization < 0.01
    ck_corner = {(p.sockets, p.sdc_fit): p for p in surfaces.checkpoint_only}
    assert ck_corner[(1048576, 10000.0)].vulnerability > 0.99
