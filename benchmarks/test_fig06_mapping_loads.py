"""Figure 6 — inter-replica link loads under the three mapping schemes.

Paper (512 BG/P nodes, front plane shown): default mapping funnels up to 4
checkpoint messages through the bisection links; column mapping gives every
buddy message a private link (max 1); mixed mapping bounds the overlap at the
chunk width (2).
"""

from repro.harness.figures import fig6_data
from repro.harness.report import format_table


def test_fig06_mapping_loads(benchmark, emit):
    rows = benchmark(fig6_data, (8, 8, 8))

    emit(format_table(
        ["mapping", "max msgs/link", "buddy hops", "total bytes*hops",
         "per-column profile (Z axis)"],
        [[r.mapping, r.max_link_load, r.buddy_hops_max, r.total_bytes_hops,
          str(list(r.plane_profile))] for r in rows],
        title="Figure 6: checkpoint messages per link, 512-node partition (8x8x8)",
    ))

    by = {r.mapping: r for r in rows}
    assert by["default"].max_link_load == 4       # the paper's [0-4] tags
    assert by["column"].max_link_load == 1
    assert by["mixed"].max_link_load == 2
    # Default routes every message Z/2 = 4 hops; column only one.
    assert by["default"].buddy_hops_max == 4
    assert by["column"].buddy_hops_max == 1
    # The per-column profile of Fig. 6(a): 1,2,3,4,3,2,1 across the bisection.
    assert list(by["default"].plane_profile) == [1, 2, 3, 4, 3, 2, 1, 0]
