"""Figure 8 — single-checkpoint overhead decomposition (all six mini-apps).

Paper, per panel (1K–64K cores/replica; default/mixed/column/checksum):

* default mapping: overhead grows ~4x from 1K to 4K cores/replica (the Z
  dimension grows 8→32), then stays constant to 64K — e.g. Jacobi3D 0.6 s→2 s;
* column/mixed mappings remove the congestion and stay flat;
* checksum is flat but compute-bound — worse than column for the high-memory
  apps, best overall for the MD apps (LeanMD, miniMD);
* only the transfer component grows; local packing and comparison are flat;
* LULESH pays the largest local-checkpoint time (nested data structures).
"""

import pytest

from repro.apps.registry import MINIAPP_NAMES
from repro.harness.figures import fig8_data
from repro.harness.report import format_table


def test_fig08_checkpoint_overhead(benchmark, emit):
    rows = benchmark(fig8_data, MINIAPP_NAMES, (1024, 4096, 16384, 65536))

    for app in MINIAPP_NAMES:
        emit(format_table(
            ["cores/replica", "method", "local(s)", "transfer(s)",
             "compare(s)", "total(s)"],
            [[r.cores_per_replica, r.method, round(r.local, 4),
              round(r.transfer, 4), round(r.compare, 4), round(r.total, 4)]
             for r in rows if r.app == app],
            title=f"Figure 8 ({app}): single checkpoint overhead",
        ))

    def pick(app, cores, method):
        for r in rows:
            if (r.app, r.cores_per_replica, r.method) == (app, cores, method):
                return r
        raise KeyError

    # Jacobi3D (Charm++): 0.6 s -> ~2 s under default mapping.
    j1 = pick("jacobi3d-charm", 1024, "default")
    j64 = pick("jacobi3d-charm", 65536, "default")
    assert j1.total == pytest.approx(0.6, rel=0.25)
    assert j64.total == pytest.approx(2.0, rel=0.25)
    # Growth happens between 1K and 4K, flat afterwards.
    j4 = pick("jacobi3d-charm", 4096, "default")
    assert j64.total == pytest.approx(j4.total, rel=0.1)
    # Optimized variants flat across scale for the high-memory apps; the MD
    # apps' tiny checkpoints let the log-scaling collective sync show through
    # (visible in the paper's Fig. 8c/8f too), so allow a gentle slope there.
    for app in MINIAPP_NAMES:
        md = app in ("leanmd", "minimd")
        for method in ("column", "mixed", "checksum"):
            lo = pick(app, 1024, method).total
            hi = pick(app, 65536, method).total
            assert hi == pytest.approx(lo, rel=0.6 if md else 0.15), (app, method)
            assert hi - lo < 0.02  # absolute sync growth stays tiny
    # Checksum loses to column for high-memory apps, wins for MD apps.
    for app in ("jacobi3d-charm", "jacobi3d-ampi", "hpccg", "lulesh"):
        assert pick(app, 65536, "checksum").total > pick(app, 65536, "column").total
    for app in ("leanmd", "minimd"):
        totals = {m: pick(app, 65536, m).total
                  for m in ("default", "mixed", "column", "checksum")}
        assert totals["checksum"] == min(totals.values())
    # LULESH has the slowest local checkpoint of the suite.
    locals_at_64k = {app: pick(app, 65536, "default").local
                     for app in MINIAPP_NAMES}
    assert max(locals_at_64k, key=locals_at_64k.get) == "lulesh"
    # MD apps live in the sub-second regime (paper: 100-200 ms).
    assert pick("leanmd", 65536, "default").total < 0.2
    assert pick("minimd", 65536, "default").total < 0.1
