"""Cross-validation — the measured checkpoint-interval U-curve vs the model.

The Section-5 model's whole job is predicting the best checkpoint period.
Here we check it against the *simulator* rather than against itself: the
same Poisson-fault workload runs end-to-end on the DES at several fixed
intervals, giving the classic U-curve (too eager → checkpoint overhead
dominates; too lazy → rework dominates), and the measured minimum must sit
near the model's optimal period for the same parameters.
"""

import numpy as np

from repro.core import ACR, ACRConfig
from repro.faults import poisson_plan
from repro.harness.report import format_table
from repro.model.daly import daly_tau
from repro.model.params import ModelParams
from repro.model.schemes import optimal_tau
from repro.network.costs import CostModel
from repro.util.rng import RngStream

NODES = 4
HARD_MTBF = 25.0          # seconds between hard faults (aggressive, bounded run)
ITERATIONS = 4000
INTERVALS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
SEEDS = (3, 4)


def _run(interval: float, seed: int):
    plan = poisson_plan(hard_mtbf=HARD_MTBF, sdc_mtbf=None, horizon=50_000.0,
                        nodes_per_replica=NODES,
                        rng=RngStream(seed, "ucurve"))
    config = ACRConfig(scheme="strong", checkpoint_interval=interval,
                       total_iterations=ITERATIONS, tasks_per_node=1,
                       app_scale=1e-4, seed=seed, spare_nodes=512)
    acr = ACR("jacobi3d-charm", nodes_per_replica=NODES, config=config,
              injection_plan=plan)
    return acr.run(until=50_000.0, max_events=200_000_000)


def _sweep():
    curve = {}
    for interval in INTERVALS:
        times = [_run(interval, seed).final_time for seed in SEEDS]
        curve[interval] = float(np.mean(times))
    return curve


def _model_tau() -> float:
    """The model's prediction for this DES configuration."""
    acr = ACR("jacobi3d-charm", nodes_per_replica=NODES,
              config=ACRConfig(total_iterations=ITERATIONS, app_scale=1e-4))
    cost = CostModel()
    delta = cost.checkpoint_breakdown(acr.profile, acr.mapping).total
    # In the DES, MTBF is per-job (the injector draws one stream); express it
    # through a single "socket" whose MTBF matches.
    params = ModelParams(
        work=ITERATIONS * 0.05, delta=delta, sockets_per_replica=1,
        hard_mtbf_socket=HARD_MTBF * 2,  # system MTBF = socket / (2*1)
        sdc_fit_socket=0.0,
        restart_hard=cost.restart_breakdown(acr.profile, acr.mapping,
                                            scheme="strong").total,
    )
    return optimal_tau(params, "strong")


def test_validation_interval_ucurve(benchmark, emit):
    curve = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    tau_model = _model_tau()

    best_time = min(curve.values())
    # Near the bottom the U is flat; every interval within 2% of the minimum
    # is a measured co-optimum.
    good = sorted(iv for iv, t in curve.items() if t <= 1.02 * best_time)
    emit(format_table(
        ["fixed interval (s)", "mean makespan (s)", ""],
        [[iv, round(t, 1), "<- measured best" if iv in good else ""]
         for iv, t in sorted(curve.items())],
        title=(f"Validation: measured interval U-curve on the DES "
               f"(hard MTBF {HARD_MTBF}s; model tau_opt = {tau_model:.1f}s, "
               f"Daly = {daly_tau(0.6, HARD_MTBF):.1f}s)"),
    ))

    intervals = sorted(curve)
    # The curve is a U: both extremes are strictly worse than the best.
    assert curve[intervals[0]] > 1.02 * best_time
    assert curve[intervals[-1]] > 1.02 * best_time
    # The model's optimum lands within one geometric sweep step (ratio 2) of
    # the measured co-optimal plateau.
    assert good[0] / 2 <= tau_model <= good[-1] * 2
