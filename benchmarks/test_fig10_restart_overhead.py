"""Figure 10 — single-restart overhead per scheme and mapping.

Paper (1K–64K cores/replica, all six mini-apps):

* strong resilience restarts cheapest everywhere — one buddy message plus
  local rollbacks — and is insensitive to the mapping;
* medium/weak restart ships a checkpoint from every healthy node, hitting
  checkpoint-exchange congestion: topology mapping brings Jacobi3D down from
  ~2 s to ~0.41 s;
* for LeanMD the restart is dominated by barrier/broadcast synchronization,
  which grows with core count.
"""

import pytest

from repro.apps.registry import MINIAPP_NAMES
from repro.harness.figures import FIG10_VARIANTS, fig10_data
from repro.harness.report import format_table


def test_fig10_restart_overhead(benchmark, emit):
    rows = benchmark(fig10_data, MINIAPP_NAMES, (1024, 4096, 16384, 65536))

    for app in MINIAPP_NAMES:
        emit(format_table(
            ["cores/replica", "variant", "transfer(s)", "reconstruction(s)",
             "total(s)"],
            [[r.cores_per_replica, r.variant, round(r.transfer, 4),
              round(r.reconstruction, 4), round(r.total, 4)]
             for r in rows if r.app == app],
            title=f"Figure 10 ({app}): single restart overhead",
        ))

    def pick(app, cores, variant):
        for r in rows:
            if (r.app, r.cores_per_replica, r.variant) == (app, cores, variant):
                return r
        raise KeyError

    # Strong cheapest for every app at every scale.
    for app in MINIAPP_NAMES:
        for cores in (1024, 65536):
            strong = pick(app, cores, "strong").total
            for variant in FIG10_VARIANTS[1:]:
                assert strong <= pick(app, cores, variant).total + 1e-9, (
                    app, cores, variant)

    # The 2 s -> 0.41 s Jacobi3D claim (§6.3).
    default = pick("jacobi3d-charm", 65536, "medium (default)").total
    column = pick("jacobi3d-charm", 65536, "medium (column)").total
    assert default == pytest.approx(2.0, rel=0.35)
    assert column == pytest.approx(0.41, rel=0.6)

    # Mapping ordering for the congested variants.
    for app in ("jacobi3d-charm", "hpccg", "lulesh"):
        d = pick(app, 65536, "medium (default)").total
        m = pick(app, 65536, "medium (mixed)").total
        c = pick(app, 65536, "medium (column)").total
        assert d > m > c

    # LeanMD: restart dominated by synchronization, growing with scale.
    lean_small = pick("leanmd", 1024, "medium (column)")
    lean_large = pick("leanmd", 65536, "medium (column)")
    assert lean_large.reconstruction > lean_small.reconstruction
    assert lean_large.reconstruction > lean_large.transfer
