"""Micro-benchmark for the campaign server's cache-hit submit path.

The multi-tenant story only works if overlapping resubmits are effectively
free: a sweep whose cells are all in the store must complete *within the
submit request* (no queue, no fsync, no worker hand-off) at a rate that
makes "share the server" better than "run it yourself".  This measures that
path end to end — real HTTP over a real socket, one keep-alive connection,
every request expanding a sweep to content addresses and classifying all of
them as hits — and reports requests/second plus latency percentiles.

``cache_hit_rps`` is gated in ``compare_bench.py`` with an absolute floor:
the served cache-hit path must sustain ≥ 1000 sweeps/s even on one core
(the expansion is pure hashing; no simulation runs).  ``all_hits`` rides
along as a gated flag — if any benchmark request missed the cache, the
measurement itself is invalid.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time


def bench_serve_cache_hits(n_requests: int = 2000,
                           seeds_per_job: int = 8,
                           repeats: int = 3) -> dict:
    """Throughput of all-cache-hit submissions over one keep-alive socket."""
    from repro.serve import CampaignServer, ServeClient, ServeState
    from repro.store import (
        KIND_RUN_REPORT,
        ResultStore,
        experiment_cell_material,
    )

    config = {"total_iterations": 6, "checkpoint_interval": 2.0,
              "horizon": 50.0}
    seeds = list(range(seeds_per_job))
    root = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        store = ResultStore(root)
        # The store content is what makes these requests hits; the payloads
        # are never loaded on the submit path, so placeholders suffice.
        for seed in seeds:
            store.put(experiment_cell_material("jacobi3d-charm", seed,
                                               config),
                      {"bench": True}, kind=KIND_RUN_REPORT)
        state = ServeState(store)
        server = CampaignServer(state, workers=1).start_background()
        client = ServeClient(f"127.0.0.1:{server.port}", timeout=60)
        try:
            submit = lambda: client.submit(  # noqa: E731
                tenant="bench", seeds=seeds, config=config)
            for _ in range(min(50, n_requests)):  # warm up (fingerprint,
                submit()                          # known-set, JIT-ish paths)

            best_rps = 0.0
            latencies: list[float] = []
            all_hits = True
            for _ in range(max(repeats, 1)):
                run_lat = []
                t0 = time.perf_counter()
                for _ in range(n_requests):
                    r0 = time.perf_counter()
                    job = submit()
                    run_lat.append(time.perf_counter() - r0)
                    if job["status"] != "done" or \
                            job["cached_at_submit"] != seeds_per_job:
                        all_hits = False
                elapsed = time.perf_counter() - t0
                rps = n_requests / elapsed
                if rps > best_rps:
                    best_rps, latencies = rps, run_lat
            latencies.sort()
            return {
                "cache_hit_rps": best_rps,
                "requests": n_requests,
                "seeds_per_job": seeds_per_job,
                "all_hits": all_hits,
                "p50_ms": 1e3 * latencies[len(latencies) // 2],
                "p99_ms": 1e3 * latencies[int(len(latencies) * 0.99)],
                "cpu_count": os.cpu_count(),
            }
        finally:
            client.close()
            server.stop_background()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_all_serve(quick: bool = False, repeats: int = 3) -> dict:
    n = 300 if quick else 2000
    return {"serve": bench_serve_cache_hits(
        n_requests=n, repeats=1 if quick else max(repeats, 1))}


if __name__ == "__main__":
    import json

    print(json.dumps(run_all_serve(quick=True), indent=2))
