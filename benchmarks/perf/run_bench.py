#!/usr/bin/env python
"""Run the checkpoint + simulation-engine micro-benchmarks and emit
``BENCH_checkpoint.json``.

Usage::

    python benchmarks/perf/run_bench.py                 # full sizes (64 MiB)
    python benchmarks/perf/run_bench.py --quick         # tiny smoke sizes
    python benchmarks/perf/run_bench.py --mib 256 --out custom.json

The JSON records per-benchmark timings and speedups plus environment metadata;
``docs/performance.md`` explains how to read it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import numpy as np  # noqa: E402

from benchmarks.perf.bench_checkpoint import run_all  # noqa: E402
from benchmarks.perf.bench_des import run_all_des  # noqa: E402
from benchmarks.perf.bench_obs_stream import run_all_obs  # noqa: E402
from benchmarks.perf.bench_scale import run_all_scale  # noqa: E402
from benchmarks.perf.bench_serve import run_all_serve  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes, one repeat (smoke mode)")
    parser.add_argument("--mib", type=float, default=64.0,
                        help="payload size in MiB for pack/checksum benches")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_checkpoint.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick, total_mib=args.mib,
                      repeats=args.repeats)
    results.update(run_all_des(quick=args.quick,
                               repeats=min(args.repeats, 3)))
    results.update(run_all_obs(quick=args.quick,
                               repeats=min(args.repeats, 3)))
    results.update(run_all_scale(
        quick=args.quick,
        reference_events_per_s=(
            results["des_acr"]["legacy_equivalent_events_per_s"])))
    results.update(run_all_serve(quick=args.quick,
                                 repeats=min(args.repeats, 3)))
    payload = {
        "benchmark": "checkpoint_hot_path",
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    pack = results["pack"]
    inc = results["incremental_checksum"]
    camp = results["campaign"]
    print(f"wrote {args.out}")
    print(f"pack        {pack['payload_mib']:8.1f} MiB  "
          f"zero-copy {pack['pack_speedup_vs_legacy']:.2f}x, "
          f"pack_into {pack['pack_into_speedup_vs_legacy']:.2f}x vs legacy "
          f"({pack['pack_into_gib_per_s']:.2f} GiB/s steady state)")
    print(f"checksum    {inc['payload_mib']:8.1f} MiB  "
          f"incremental ({inc['dirty_fields']}/{inc['nfields']} dirty) "
          f"{inc['incremental_speedup']:.1f}x vs full recompute")
    tier = results["tiered_persist"]
    print(f"tiers       {tier['payload_mib']:8.1f} MiB  "
          f"persist {tier['persist_gib_per_s']:.2f} GiB/s "
          f"(sha {100.0 * tier['sha_share_of_persist']:.0f}%), "
          f"modeled atomic overhead {tier['sim_safety_overhead']:.2f}x, "
          f"fallback correct={tier['restore_fallback_correct']}")
    print(f"campaign    {camp['seeds']} seeds   "
          f"workers={camp['workers']} {camp['parallel_speedup']:.2f}x "
          f"on {camp['cpu_count']} core(s), "
          f"identical={camp['summaries_identical']}")
    disp = results["des_dispatch"]
    per = results["des_periodic"]
    msg = results["des_messages"]
    acr = results["des_acr"]
    print(f"des engine  {disp['n_events']} events "
          f"dispatch {disp['dispatch_speedup_vs_legacy']:.2f}x vs legacy "
          f"({disp['events_per_s'] / 1e3:.0f}k ev/s), "
          f"periodic {per['periodic_speedup_vs_resched']:.2f}x, "
          f"msg fastpath {msg['fastpath_speedup']:.2f}x")
    print(f"acr run     {acr['events']} events in {acr['wall_s']:.2f}s "
          f"({acr['events_per_s'] / 1e3:.0f}k ev/s end-to-end)")
    obs = results["obs_stream"]
    print(f"obs stream  {obs['samples']} samples every {obs['interval']:g} "
          f"sim-s (+{obs['extra_events']} events): "
          f"{obs['sampled_rate_ratio']:.3f}x unsampled throughput")
    scale = results["bench_scale"]
    print(f"scale       {scale['nodes']} nodes x{scale['total_iterations']} "
          f"iters in {scale['wall_s']:.1f}s "
          f"({scale['legacy_equivalent_events_per_s'] / 1e3:.0f}k eq-ev/s, "
          f"{scale.get('events_speedup_vs_des_acr', 0.0):.2f}x des_acr, "
          f"rss {scale['peak_rss_mib']:.0f} MiB), "
          f"parallel trace identical={scale['parallel_trace_identical']} "
          f"({scale['parallel']['effective_workers']}/"
          f"{scale['parallel']['requested_workers']} workers "
          f"on {scale['cpu_count']} core(s))")
    stress = scale["window_stress"]
    print(f"shm plane   {stress['nodes']} nodes x{stress['windows']} windows: "
          f"shm {stress['shm_loop_wall_s']:.2f}s vs "
          f"copy {stress['copy_loop_wall_s']:.2f}s "
          f"({stress['shm_speedup_vs_copy']:.2f}x, "
          f"barrier share {stress['barrier_wait_share']:.2f}, "
          f"worker rss {stress['max_worker_rss_mib']:.0f} MiB), "
          f"modes identical={scale['modes_trace_identical']}, "
          f"coordinated parallel ok={scale['coordinated_parallel_ok']}")
    xl = scale.get("parallel_xl")
    if xl is not None:
        print(f"shm xl      {xl['nodes']} nodes in {xl['wall_s']:.1f}s "
              f"({xl['windows']} windows, {xl['consensus_rounds']} rounds, "
              f"completed={xl['completed']}, max worker rss "
              f"{xl['max_worker_rss_mib']:.0f} MiB "
              f"<= {xl['rss_ceiling_mib']:.0f})")
    serve = results["serve"]
    print(f"serve       {serve['requests']} submits x"
          f"{serve['seeds_per_job']} seeds  "
          f"{serve['cache_hit_rps']:.0f} cache-hit req/s "
          f"(p50 {serve['p50_ms']:.2f} ms, p99 {serve['p99_ms']:.2f} ms, "
          f"all_hits={serve['all_hits']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
