"""Checkpoint hot-path micro-benchmarks (pack, checksum, campaign).

Run ``python benchmarks/perf/run_bench.py`` to emit ``BENCH_checkpoint.json``;
``pytest tests/perf -m perf_smoke`` exercises every benchmark once with tiny
sizes so the suite cannot silently rot.
"""
