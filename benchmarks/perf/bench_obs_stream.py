"""Micro-benchmark for streaming time-series sampling overhead.

The telemetry contract is that observability is opt-in and cheap: a run with
no series recorder schedules zero sampling events (bit-identical, covered by
the golden digests), and a run sampling at the *default* interval must not
meaningfully slow the engine down.  This benchmark quantifies the second
half on the same end-to-end ACR configuration ``bench_des.bench_acr_run``
times.

A naive quotient of two ~50 ms wall-clock runs jitters by more than the
effect being measured on a busy machine, so the *gated* metric is composed
from two individually stable measurements instead:

* the per-sample cost (one ``metrics_snapshot()`` + columnar append), as the
  best of many tight timing blocks — minima of short loops converge fast;
* the unsampled run's wall time (best-of-N).

``sampled_rate_ratio`` = ``1 / (1 + samples * per_sample_s / t_unsampled)``
— the fraction of engine throughput left after paying for sampling at the
default cadence — is gated in ``compare_bench.py`` with an absolute floor.
The directly measured run-vs-run quotient rides along informationally as
``measured_rate_ratio``.
"""

from __future__ import annotations

import time


def bench_obs_stream(total_iterations: int = 200,
                     interval: float | None = None,
                     repeats: int = 3) -> dict:
    """Sampling overhead at ``interval`` vs an unsampled run (best-of-N)."""
    from repro.harness.experiment import run_acr_experiment
    from repro.obs.series import DEFAULT_SERIES_INTERVAL, TimeSeriesRecorder

    interval = interval or DEFAULT_SERIES_INTERVAL
    kwargs = dict(nodes_per_replica=4, total_iterations=total_iterations,
                  checkpoint_interval=2.0, hard_mtbf=15.0, sdc_mtbf=25.0,
                  seed=3)

    def one(make_series):
        series = make_series()
        t0 = time.perf_counter()
        res = run_acr_experiment("jacobi3d-charm", series=series, **kwargs)
        elapsed = time.perf_counter() - t0
        samples = len(series) if series is not None else 0
        return elapsed, res, samples

    plain = lambda: None  # noqa: E731
    sampled = lambda: TimeSeriesRecorder(interval=interval)  # noqa: E731
    one(plain), one(sampled)  # warm caches/allocator before timing

    t_plain = t_sampled = float("inf")
    ev_plain = ev_sampled = n_samples = 0
    acr = None
    for _ in range(max(repeats, 1)):
        elapsed, res, _ = one(plain)
        if elapsed < t_plain:
            t_plain, ev_plain = elapsed, res.acr.sim.events_processed
        elapsed, res, samples = one(sampled)
        if elapsed < t_sampled:
            t_sampled = elapsed
            ev_sampled, n_samples = res.acr.sim.events_processed, samples
            acr = res.acr

    # Per-sample cost, isolated: repeatedly snapshot the finished run's
    # registry into a growing recorder (growth is the expensive path; the
    # same-timestamp overwrite path is cheaper).  Best-of over tight blocks
    # is stable where a quotient of whole-run timings is not.
    rec = TimeSeriesRecorder(interval=interval)
    block, best_block = 10, float("inf")
    for rep in range(12):
        t0 = time.perf_counter()
        for i in range(block):
            rec.sample(float(rep * block + i), acr.metrics_snapshot())
        best_block = min(best_block, time.perf_counter() - t0)
    per_sample_s = best_block / block

    sampling_cost_s = n_samples * per_sample_s
    plain_rate = ev_plain / t_plain
    sampled_rate = ev_sampled / t_sampled
    return {
        "total_iterations": total_iterations,
        "interval": interval,
        "samples": n_samples,
        "unsampled_events": ev_plain,
        "sampled_events": ev_sampled,
        # Sampling *adds* events (the periodic timer ticks), so the honest
        # throughput comparison is per-event, not per-run.
        "extra_events": ev_sampled - ev_plain,
        "unsampled_wall_s": t_plain,
        "sampled_wall_s": t_sampled,
        "unsampled_events_per_s": plain_rate,
        "sampled_events_per_s": sampled_rate,
        "per_sample_us": per_sample_s * 1e6,
        "sampling_cost_share": sampling_cost_s / t_plain,
        "sampled_rate_ratio": 1.0 / (1.0 + sampling_cost_s / t_plain),
        "measured_rate_ratio": sampled_rate / plain_rate,
    }


def run_all_obs(*, quick: bool = False, repeats: int = 3) -> dict:
    """Run the observability-stream benchmark; ``quick`` shrinks for smoke."""
    if quick:
        return {"obs_stream": bench_obs_stream(total_iterations=20,
                                               interval=2.0, repeats=1)}
    return {"obs_stream": bench_obs_stream(repeats=repeats)}
