"""Micro-benchmarks for the checkpoint hot path.

Measures the three layers this overhaul touched, each against its reference
baseline, so every future PR has a perf trajectory to defend:

* **packing** — the legacy chunk-and-concatenate path (``PackingPUPer``, the
  seed's ``pack()``) vs the zero-copy sized path (``pack``) vs steady-state
  buffer reuse (``pack_into``);
* **checksums** — Fletcher-32/64 and the 32-byte striped digest throughput,
  plus incremental field-granular digests with 1 of N fields dirty vs a full
  recompute;
* **campaigns** — multi-seed replay throughput, serial vs ``workers=N``;
* **durable tiers** — the level-2/3 persist path (deep copy + SHA-256 guard
  per shard), its modeled atomic-vs-unsafe safety overhead, and the
  torn-write fallback guarantee.

All timings use best-of-``repeats`` ``perf_counter`` deltas; payload sizes
and speedups land in ``BENCH_checkpoint.json`` via :func:`run_all`.
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from repro.harness.campaign import effective_workers, run_campaign
from repro.pup.checksum import (
    DigestCache,
    checkpoint_checksum,
    fletcher32,
    fletcher64,
)
from repro.pup.puper import PackedState, PackingPUPer, pack, pack_into

MIB = float(1 << 20)


class MultiFieldState:
    """A pupable object with ``nfields`` float64 arrays totalling ~``total_bytes``."""

    def __init__(self, nfields: int, total_bytes: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        per_field = max(1, total_bytes // nfields // 8)
        self.iteration = 0
        self.arrays = [rng.random(per_field) for _ in range(nfields)]

    def pup(self, p):
        self.iteration = p.pup_int("iteration", self.iteration)
        for i, arr in enumerate(self.arrays):
            self.arrays[i] = p.pup_array(f"field{i:02d}", arr)

    def dirty(self, index: int) -> None:
        """Perturb one field so the next pack_into round sees it changed."""
        self.arrays[index % len(self.arrays)][0] += 1.0


def legacy_pack(obj) -> PackedState:
    """The seed ``pack()`` path: per-field chunk copies + one concatenation."""
    p = PackingPUPer()
    obj.pup(p)
    return PackedState(p.buffer(), p.fields)


def _best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_pack(total_mib: float = 64.0, nfields: int = 16,
               repeats: int = 5) -> dict:
    """Legacy pack vs zero-copy pack vs steady-state pack_into."""
    obj = MultiFieldState(nfields, int(total_mib * MIB))
    t_legacy = _best(lambda: legacy_pack(obj), repeats)
    t_pack = _best(lambda: pack(obj), repeats)
    state = pack_into(obj)
    t_into = _best(lambda: pack_into(obj, state), repeats)
    nbytes = state.nbytes
    return {
        "payload_mib": nbytes / MIB,
        "nfields": nfields,
        "legacy_pack_s": t_legacy,
        "pack_s": t_pack,
        "pack_into_s": t_into,
        "pack_speedup_vs_legacy": t_legacy / t_pack,
        "pack_into_speedup_vs_legacy": t_legacy / t_into,
        "pack_into_gib_per_s": nbytes / t_into / (1 << 30),
    }


def _seed_striped_digest(data: np.ndarray) -> bytes:
    """The seed's striped digest, verbatim in structure: each stripe is
    gathered, pad-*concatenated*, and expanded to an ``astype(int64)`` copy
    before a kernel that re-``arange``-s its weight vector per block.  Kept as
    the reference the current gather + in-place kernel is gated against."""
    from repro.pup.checksum import _BLOCK64, _M64

    out = bytearray()
    for stripe in range(4):
        raw = np.ascontiguousarray(data[stripe::4])
        rem = raw.nbytes % 4
        if rem:
            raw = np.concatenate([raw, np.zeros(4 - rem, dtype=np.uint8)])
        words = raw.view(np.dtype(np.uint32).newbyteorder("<")).astype(np.int64)
        s1 = np.int64(0)
        s2 = np.int64(0)
        for start in range(0, words.size, _BLOCK64):
            chunk = words[start : start + _BLOCK64]
            k = chunk.size
            weights = np.arange(k, 0, -1, dtype=np.int64)
            chunk_sum = np.int64(chunk.sum() % _M64)
            weighted = np.int64((weights * chunk).sum() % _M64)
            s2 = (s2 + (np.int64(k) % _M64) * s1 + weighted) % _M64
            s1 = (s1 + chunk_sum) % _M64
        out += ((int(s2) << 32) | int(s1)).to_bytes(8, "little")
    return bytes(out)


def bench_fletcher(total_mib: float = 64.0, repeats: int = 3) -> dict:
    """Raw Fletcher-32/64 and striped-digest throughput.

    ``striped_speedup_vs_seed`` gates the striped digest against the seed's
    copying implementation.  The striped digest intrinsically trails plain
    ``fletcher64`` (~0.4x on this path): the 4-byte-stride gathers touch
    every cache line four times over, and no numpy-only alternative beats
    them — byte extraction from a ``uint32`` view via shift/mask measured
    ~2x *slower* than the gather, and the gather-free weighted-column-sums
    variant loses too (integer matvec is scalar in numpy; see the module
    docstring of :mod:`repro.pup.checksum`).  So the digest is gated as a
    ratio to the seed reference, which shares the gather cost but adds the
    pad-concatenate and int64-expansion copies the current path eliminated.
    """
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=int(total_mib * MIB), dtype=np.uint8)
    assert checkpoint_checksum(data) == _seed_striped_digest(data), \
        "striped digest no longer bit-identical to the seed implementation"
    t32 = _best(lambda: fletcher32(data), repeats)
    t64 = _best(lambda: fletcher64(data), repeats)
    t_striped = _best(lambda: checkpoint_checksum(data), repeats)
    t_seed = _best(lambda: _seed_striped_digest(data), repeats)
    gib = data.nbytes / (1 << 30)
    return {
        "payload_mib": data.nbytes / MIB,
        "fletcher32_s": t32,
        "fletcher64_s": t64,
        "striped_digest_s": t_striped,
        "seed_striped_digest_s": t_seed,
        "fletcher32_gib_per_s": gib / t32,
        "fletcher64_gib_per_s": gib / t64,
        "striped_digest_gib_per_s": gib / t_striped,
        "striped_speedup_vs_seed": t_seed / t_striped,
    }


def bench_incremental_checksum(total_mib: float = 64.0, nfields: int = 16,
                               dirty_fields: int = 1,
                               repeats: int = 5) -> dict:
    """Field-granular digest with ``dirty_fields`` of ``nfields`` dirty vs
    recomputing the digest from scratch every round."""
    obj = MultiFieldState(nfields, int(total_mib * MIB))
    state = pack_into(obj)
    t_full = _best(lambda: checkpoint_checksum(state), repeats)
    cache = DigestCache()
    checkpoint_checksum(state, cache=cache)  # warm the cache
    best = float("inf")
    for round_no in range(repeats):
        for d in range(dirty_fields):
            obj.dirty(round_no * dirty_fields + d)
        pack_into(obj, state, track_dirty=True)
        t0 = time.perf_counter()
        checkpoint_checksum(state, cache=cache)
        best = min(best, time.perf_counter() - t0)
    return {
        "payload_mib": state.nbytes / MIB,
        "nfields": nfields,
        "dirty_fields": dirty_fields,
        "full_recompute_s": t_full,
        "incremental_s": best,
        "incremental_speedup": t_full / best,
    }


def bench_tiered_persist(total_mib: float = 64.0, nshards: int = 8,
                         repeats: int = 3) -> dict:
    """Durable-tier group write: real cost of the modeled persist path.

    The hierarchy's bookkeeping per persist is one deep copy plus one
    SHA-256 per shard, so ``persist_gib_per_s`` tracks how much simulated
    storage a campaign can afford and ``sha_share_of_persist`` shows where
    that wall time goes.  Two dimensionless gates ride along:
    ``sim_safety_overhead`` (the modeled atomic-vs-unsafe write-time ratio,
    pure cost-model arithmetic, must stay >= 1) and
    ``restore_fallback_correct`` (a torn group write must never be served
    back by :meth:`DurableHierarchy.restore`).
    """
    from repro.core.checkpoint import CheckpointGeneration
    from repro.storage.hierarchy import DurableHierarchy, _digest
    from repro.storage.tiers import NODE_LOCAL_TIER, WriteProtocol

    rng = np.random.default_rng(7)
    per_shard = max(1, int(total_mib * MIB) // nshards)

    def make_gen(iteration: int) -> CheckpointGeneration:
        return CheckpointGeneration(
            iteration=iteration,
            shards={r: PackedState(rng.integers(0, 256, size=per_shard,
                                                dtype=np.uint8))
                    for r in range(nshards)})

    gen = make_gen(10)
    nbytes = sum(s.nbytes for s in gen.shards.values())

    def persist_once(protocol: WriteProtocol) -> None:
        hier = DurableHierarchy(
            [NODE_LOCAL_TIER.with_protocol(protocol)], nshards)
        hier.persist_now(gen, 0.0)

    t_atomic = _best(lambda: persist_once(WriteProtocol.ATOMIC_DIRSYNC),
                     repeats)
    t_unsafe = _best(lambda: persist_once(WriteProtocol.UNSAFE), repeats)
    t_sha = _best(lambda: [_digest(s.buffer) for s in gen.shards.values()],
                  repeats)

    hier = DurableHierarchy(
        [NODE_LOCAL_TIER.with_protocol(WriteProtocol.UNSAFE)], nshards)
    hier.persist_now(gen, 0.0)
    hier.stage(2, make_gen(20), 1.0)
    hier.abort_inflight(1.0, fault_point=nshards // 2)
    restored = hier.restore(2.0)
    fallback_correct = (restored is not None
                        and restored.generation.iteration == 10
                        and restored.fellback)
    return {
        "payload_mib": nbytes / MIB,
        "nshards": nshards,
        "persist_atomic_s": t_atomic,
        "persist_unsafe_s": t_unsafe,
        "sha256_s": t_sha,
        "persist_gib_per_s": nbytes / t_atomic / (1 << 30),
        "sha_share_of_persist": t_sha / t_atomic if t_atomic > 0 else 0.0,
        "sim_safety_overhead": NODE_LOCAL_TIER.safety_overhead(nbytes,
                                                               nshards),
        "restore_fallback_correct": bool(fallback_correct),
    }


def bench_campaign(seeds: int = 8, workers: int = 4,
                   total_iterations: int = 400) -> dict:
    """Multi-seed campaign throughput, serial vs process-parallel.

    The speedup tracks the machine's core count: worker requests are clamped
    to ``os.cpu_count()`` (``workers_effective`` records the clamp), so on a
    single-core box both paths run serially and the ratio is ~1.0 instead of
    the misleading sub-1.0 fork/IPC overhead the unclamped pool used to show.
    The bitwise-identity check holds everywhere.
    """
    kwargs = dict(nodes_per_replica=2, total_iterations=total_iterations,
                  checkpoint_interval=2.0, hard_mtbf=20.0, horizon=20_000.0)
    t0 = time.perf_counter()
    serial = run_campaign("synthetic", seeds=range(seeds), **kwargs)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign("synthetic", seeds=range(seeds), workers=workers,
                            **kwargs)
    t_parallel = time.perf_counter() - t0
    return {
        "seeds": seeds,
        "workers": workers,
        "workers_effective": effective_workers(workers, seeds),
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "parallel_speedup": t_serial / t_parallel,
        "summaries_identical": serial.summary == parallel.summary,
        "serial_seeds_per_s": seeds / t_serial,
        "parallel_seeds_per_s": seeds / t_parallel,
    }


def run_all(*, quick: bool = False, total_mib: float = 64.0,
            repeats: int = 5) -> dict:
    """Run every micro-benchmark; ``quick`` shrinks sizes for smoke testing."""
    if quick:
        total_mib, repeats = 1.0, 1
        campaign_kwargs = dict(seeds=2, workers=2, total_iterations=20)
    else:
        campaign_kwargs = dict(seeds=8, workers=4)
    return {
        "pack": bench_pack(total_mib=total_mib, repeats=repeats),
        "fletcher": bench_fletcher(total_mib=total_mib,
                                   repeats=max(2, repeats - 2)),
        "incremental_checksum": bench_incremental_checksum(
            total_mib=total_mib, repeats=repeats),
        "tiered_persist": bench_tiered_persist(
            total_mib=total_mib, repeats=max(2, repeats - 2)),
        "campaign": bench_campaign(**campaign_kwargs),
    }
