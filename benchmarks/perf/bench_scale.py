"""Paper-scale end-to-end benchmark: a 2×64Ki-node replica pair under ACR.

The paper evaluates ACR at up to 131,072 cores on Intrepid (§6); this bench
simulates that node count end to end — full framework, heartbeat monitor,
periodic coordinated checkpoints — in the regime those machines actually run:
multi-second compute iterations with the buddy-heartbeat firehose as the
dominant event-queue load between checkpoints.

Throughput is reported in two units:

* ``events_per_s`` — heap events dispatched per wall second.  Honest but
  *not* comparable across the cohort-batching change: the vectorized
  heartbeat sweep settles 131,072 probes in a single event.
* ``legacy_equivalent_events_per_s`` — the same run counted at pre-batching
  granularity (one event per message, via the transport's
  ``batched_messages``/``batch_events`` counters).  This is the unit the
  historical ``des_acr`` baseline was measured in, so
  ``events_speedup_vs_des_acr`` is an apples-to-apples end-to-end ratio —
  the gated acceptance number.

A small partitioned-mode measurement rides along: the same scenario class
through :mod:`repro.harness.parallel` with ``partitions > 1``, asserting the
merged trace is byte-identical to the single-partition run and recording the
worker clamp (``cpu_count`` / requested / effective / partitions) plus the
multi-process speedup (CPU-gated in ``compare_bench.py``, like
``campaign.parallel_speedup``).

The shared-memory data plane gets three dedicated measurements:

* ``window_stress`` — the copy-based (pickled pipes) and shared-memory
  planes on the *same* window-heavy 2×64Ki-node coordinated-cadence
  scenario, forced multiprocess.  Windows are numerous and nearly empty, so
  the measurement isolates per-window data-plane overhead; the loop-wall
  ratio is ``shm_speedup_vs_copy`` (CPU-gated ≥ 1.3 in compare_bench).
  Per-window barrier-overhead and per-worker peak-RSS breakdowns ride on
  the shm report.
* ``parallel_xl`` — a 2×128Ki-node run (beyond the single-process bench's
  paper scale) under the shm plane, with the same breakdowns; its
  completion is the gated ``xl_completed`` flag.
* the trace-identity matrix inside ``parallel`` — merged-trace digests
  across 1/4/8 partitions with the shm plane forced on and off, in-process
  and forked, plus a coordinated-checkpoint run executing under the
  parallel mode (``coordinated_parallel_ok``: consensus rounds > 0, no
  single-process fallback, digest unchanged).
"""

from __future__ import annotations

import os
import resource
import time

from repro.apps.synthetic import synthetic_descriptor
from repro.core.config import ACRConfig
from repro.core.framework import ACR
from repro.harness.parallel import ParallelScenario, run_parallel

KIB = 1024


def _peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_scale_run(
    *,
    nodes_per_replica: int = 64 * KIB,
    total_iterations: int = 6,
    iteration_seconds: float = 10.0,
    checkpoint_interval: float = 60.0,
    seed: int = 3,
    reference_events_per_s: float | None = None,
) -> dict:
    """One failure-free 2×``nodes_per_replica`` ACR run, timed end to end."""
    config = ACRConfig(
        scheme="strong", checkpoint_interval=checkpoint_interval,
        total_iterations=total_iterations, tasks_per_node=1,
        app_scale=1e-4, seed=seed, spare_nodes=0)
    t0 = time.perf_counter()
    acr = ACR("synthetic", nodes_per_replica=nodes_per_replica, config=config,
              app_kwargs={"descriptor": synthetic_descriptor(
                  iteration_seconds=iteration_seconds)})
    t1 = time.perf_counter()
    report = acr.run(until=100.0 * iteration_seconds, max_events=500_000_000)
    wall = time.perf_counter() - t1
    sim, transport = acr.sim, acr.transport
    events = sim.events_processed
    legacy_events = events + transport.batched_messages - transport.batch_events
    node_iterations = 2 * nodes_per_replica * total_iterations
    out = {
        "nodes": 2 * nodes_per_replica,
        "nodes_per_replica": nodes_per_replica,
        "total_iterations": total_iterations,
        "iteration_seconds": iteration_seconds,
        "completed": report.completed,
        "sim_time": sim.now,
        "construct_s": t1 - t0,
        "wall_s": wall,
        "events": events,
        "legacy_equivalent_events": legacy_events,
        "events_per_s": events / wall,
        "legacy_equivalent_events_per_s": legacy_events / wall,
        "node_iterations_per_s": node_iterations / wall,
        "peak_rss_mib": _peak_rss_mib(),
        "max_queue_depth": sim.max_queue_depth,
        "max_cohort_events": sim.max_cohort_events,
    }
    if reference_events_per_s:
        out["events_speedup_vs_des_acr"] = (
            out["legacy_equivalent_events_per_s"] / reference_events_per_s)
    return out


def bench_parallel_mode(
    *,
    nodes_per_replica: int = 2 * KIB,
    total_iterations: int = 8,
    partitions: int = 4,
    seed: int = 7,
) -> dict:
    """Partitioned-mode determinism check + speedup on a mid-size scenario.

    On top of the original 1-vs-N wall comparison, computes the merged-trace
    digest across 1/4/8 partitions with the shared-memory plane forced on
    and off (in-process) and across both forked data planes, and runs a
    coordinated-checkpoint scenario under the forced-multiprocess shm plane
    — ``modes_trace_identical`` and ``coordinated_parallel_ok`` are the
    gated flags.
    """
    scenario = ParallelScenario(
        nodes_per_replica=nodes_per_replica,
        total_iterations=total_iterations,
        iteration_seconds=0.5, n_faults=2, fault_window=(0.1, 0.4),
        scheme="strong", snapshot_interval=2.0,
        horizon=total_iterations * 0.5 * 6.0, seed=seed)
    single = run_parallel(scenario, partitions=1, workers=1, trace=True)
    cpus = os.cpu_count() or 1
    requested = min(partitions, cpus) if cpus > 1 else partitions
    multi = run_parallel(scenario, partitions=partitions, workers=requested,
                         trace=True)
    assert single.wall_s > 0 and multi.wall_s > 0

    # Trace-identity matrix: every decomposition × data-plane combination
    # must reproduce the single-partition digest byte for byte.
    digests: dict[str, str] = {}
    for parts in (1, 4, 8):
        for shm in (False, True):
            rep = run_parallel(scenario, partitions=parts, workers=1,
                               trace=True, shared_memory=shm)
            digests[f"p{parts}-{rep.data_plane}"] = rep.trace_digest
    for shm in (False, True):
        rep = run_parallel(scenario, partitions=4, workers=2, trace=True,
                           force_processes=True, shared_memory=shm)
        digests[f"p4w2-{rep.data_plane}"] = rep.trace_digest
    modes_identical = len(set(digests.values())) == 1 \
        and single.trace_digest in digests.values()

    # Coordinated checkpoint-consensus under the parallel mode: rounds must
    # actually execute in forked workers (no single-process fallback) and
    # the golden digest must match the in-process reference.
    coord_scenario = ParallelScenario(
        nodes_per_replica=max(nodes_per_replica // 8, 8),
        total_iterations=total_iterations,
        iteration_seconds=0.5, n_faults=2, fault_window=(0.1, 0.4),
        scheme="coordinated", coordinated_interval=1.0,
        coordinated_pause=0.1,
        horizon=total_iterations * 0.5 * 6.0, seed=seed)
    coord_ref = run_parallel(coord_scenario, partitions=1, trace=True)
    coord_par = run_parallel(coord_scenario, partitions=4, workers=2,
                             trace=True, force_processes=True,
                             shared_memory=True)
    coordinated_ok = bool(
        coord_par.data_plane == "shm"
        and coord_par.consensus_rounds > 0
        and coord_par.consensus_rounds == coord_ref.consensus_rounds
        and coord_par.trace_digest == coord_ref.trace_digest
        and coord_par.completed)

    return {
        "nodes": 2 * nodes_per_replica,
        "partitions": partitions,
        "cpu_count": cpus,
        "requested_workers": multi.requested_workers,
        "effective_workers": multi.effective_workers,
        "windows": multi.windows,
        "completed": bool(single.completed and multi.completed),
        "trace_identical": single.trace_digest == multi.trace_digest,
        "trace_digest": single.trace_digest,
        "single_wall_s": single.wall_s,
        "partitioned_wall_s": multi.wall_s,
        "parallel_speedup": single.wall_s / multi.wall_s,
        "events_single": single.events_processed,
        "events_partitioned": multi.events_processed,
        "mode_digests": digests,
        "modes_trace_identical": modes_identical,
        "coordinated_rounds": coord_par.consensus_rounds,
        "coordinated_data_plane": coord_par.data_plane,
        "coordinated_parallel_ok": coordinated_ok,
    }


def bench_window_stress(
    *,
    nodes_per_replica: int = 64 * KIB,
    horizon: float = 12.0,
    iteration_seconds: float = 10.0,
    coordinated_interval: float = 0.01,
    partitions: int = 2,
    workers: int = 2,
    seed: int = 5,
) -> dict:
    """Copy-based vs shared-memory data plane on a window-heavy scenario.

    Long compute iterations plus a fast coordinated-round cadence make the
    windows numerous and nearly empty, so per-window data-plane overhead
    (pickled pipe round-trips vs scalar barrier waits) dominates the loop
    wall — which is exactly what the shm rework targets.  Both runs are
    forced multiprocess so the comparison measures the planes, not the
    in-process fallback; the ratio is only *gated* on multi-core machines.
    """
    scenario = ParallelScenario(
        nodes_per_replica=nodes_per_replica, total_iterations=1,
        iteration_seconds=iteration_seconds, horizon=horizon,
        coordinated_interval=coordinated_interval, scheme="strong",
        seed=seed)
    shm = run_parallel(scenario, partitions=partitions, workers=workers,
                       force_processes=True, shared_memory=True)
    copy = run_parallel(scenario, partitions=partitions, workers=workers,
                        force_processes=True, shared_memory=False)
    assert shm.wall_s > 0 and copy.wall_s > 0
    assert shm.data_plane == "shm" and copy.data_plane == "pipes"
    barrier_total = sum(shm.barrier_wait_s or [])
    window_barrier = shm.window_barrier_s or []
    return {
        "nodes": 2 * nodes_per_replica,
        "partitions": partitions,
        "workers": workers,
        "windows": shm.windows,
        "consensus_rounds": shm.consensus_rounds,
        "completed": bool(shm.completed and copy.completed),
        "copy_wall_s": copy.wall_s,
        "shm_wall_s": shm.wall_s,
        "copy_loop_wall_s": copy.loop_wall_s,
        "shm_loop_wall_s": shm.loop_wall_s,
        "copy_events_per_s": copy.events_processed / copy.loop_wall_s,
        "shm_events_per_s": shm.events_processed / shm.loop_wall_s,
        "shm_speedup_vs_copy": copy.loop_wall_s / shm.loop_wall_s,
        "barrier_wait_share": (
            barrier_total / (len(shm.barrier_wait_s or [1]) * shm.loop_wall_s)
            if shm.loop_wall_s else 0.0),
        "mean_window_barrier_s": (sum(window_barrier) / len(window_barrier)
                                  if window_barrier else 0.0),
        "max_window_barrier_s": max(window_barrier, default=0.0),
        "worker_peak_rss_mib": shm.worker_peak_rss_mib,
        "max_worker_rss_mib": max(shm.worker_peak_rss_mib or [0.0]),
    }


#: Per-worker RSS ceiling for the shm plane at full scale: the seed's
#: single-process 2×64Ki run peaked at 865 MiB, so two shm workers splitting
#: a 2×128Ki scenario must each stay well under it.
XL_WORKER_RSS_CEILING_MIB = 700.0


def bench_parallel_xl(
    *,
    nodes_per_replica: int = 128 * KIB,
    horizon: float = 12.0,
    coordinated_interval: float = 0.1,
    partitions: int = 2,
    workers: int = 2,
    seed: int = 5,
) -> dict:
    """A 2×128Ki-node run under the shared-memory plane.

    Twice the single-process bench's paper scale — the regime the shm
    rework exists for.  Reports the per-window barrier-overhead and
    per-worker peak-RSS breakdowns; completion and the RSS ceiling are the
    gated outcomes.
    """
    scenario = ParallelScenario(
        nodes_per_replica=nodes_per_replica, total_iterations=1,
        iteration_seconds=10.0, horizon=horizon,
        coordinated_interval=coordinated_interval, scheme="strong",
        seed=seed)
    report = run_parallel(scenario, partitions=partitions, workers=workers,
                          force_processes=True, shared_memory=True)
    assert report.wall_s > 0
    window_barrier = report.window_barrier_s or []
    max_rss = max(report.worker_peak_rss_mib or [0.0])
    return {
        "nodes": 2 * nodes_per_replica,
        "partitions": partitions,
        "workers": workers,
        "windows": report.windows,
        "consensus_rounds": report.consensus_rounds,
        "completed": report.completed,
        "data_plane": report.data_plane,
        "wall_s": report.wall_s,
        "loop_wall_s": report.loop_wall_s,
        "events": report.events_processed,
        "barrier_wait_s": report.barrier_wait_s,
        "mean_window_barrier_s": (sum(window_barrier) / len(window_barrier)
                                  if window_barrier else 0.0),
        "max_window_barrier_s": max(window_barrier, default=0.0),
        "worker_peak_rss_mib": report.worker_peak_rss_mib,
        "max_worker_rss_mib": max_rss,
        "rss_ceiling_mib": XL_WORKER_RSS_CEILING_MIB,
        "rss_within_ceiling": max_rss <= XL_WORKER_RSS_CEILING_MIB,
    }


def run_all_scale(*, quick: bool = False,
                  reference_events_per_s: float | None = None) -> dict:
    """``bench_scale`` section: the full-scale run + the parallel-mode check.

    ``quick`` trims to the ~8Ki-node smoke configuration the CI
    ``scale_smoke`` job runs inside its wall-clock budget.
    """
    if quick:
        scale = bench_scale_run(
            nodes_per_replica=8 * KIB, total_iterations=3,
            reference_events_per_s=reference_events_per_s)
        parallel = bench_parallel_mode(nodes_per_replica=256,
                                       total_iterations=6, partitions=4)
        # The trimmed 16Ki-node shm exercise the CI scale_smoke lane runs
        # inside its 120 s budget; the 2×128Ki xl run is full-bench only.
        stress = bench_window_stress(nodes_per_replica=8 * KIB,
                                     horizon=6.0, iteration_seconds=5.0,
                                     coordinated_interval=0.02)
        xl = None
    else:
        scale = bench_scale_run(reference_events_per_s=reference_events_per_s)
        parallel = bench_parallel_mode()
        stress = bench_window_stress()
        xl = bench_parallel_xl()
    scale["quick"] = quick
    scale["parallel"] = parallel
    scale["window_stress"] = stress
    # Surface the gated metrics at the section's top level for compare_bench.
    scale["parallel_trace_identical"] = parallel["trace_identical"]
    scale["parallel_speedup"] = parallel["parallel_speedup"]
    scale["cpu_count"] = parallel["cpu_count"]
    scale["modes_trace_identical"] = parallel["modes_trace_identical"]
    scale["coordinated_parallel_ok"] = parallel["coordinated_parallel_ok"]
    scale["shm_speedup_vs_copy"] = stress["shm_speedup_vs_copy"]
    scale["shm_events_per_s"] = stress["shm_events_per_s"]
    scale["copy_events_per_s"] = stress["copy_events_per_s"]
    scale["max_worker_rss_mib"] = stress["max_worker_rss_mib"]
    if xl is not None:
        scale["parallel_xl"] = xl
        scale["xl_completed"] = bool(xl["completed"]
                                     and xl["rss_within_ceiling"])
    return {"bench_scale": scale}
