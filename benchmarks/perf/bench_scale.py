"""Paper-scale end-to-end benchmark: a 2×64Ki-node replica pair under ACR.

The paper evaluates ACR at up to 131,072 cores on Intrepid (§6); this bench
simulates that node count end to end — full framework, heartbeat monitor,
periodic coordinated checkpoints — in the regime those machines actually run:
multi-second compute iterations with the buddy-heartbeat firehose as the
dominant event-queue load between checkpoints.

Throughput is reported in two units:

* ``events_per_s`` — heap events dispatched per wall second.  Honest but
  *not* comparable across the cohort-batching change: the vectorized
  heartbeat sweep settles 131,072 probes in a single event.
* ``legacy_equivalent_events_per_s`` — the same run counted at pre-batching
  granularity (one event per message, via the transport's
  ``batched_messages``/``batch_events`` counters).  This is the unit the
  historical ``des_acr`` baseline was measured in, so
  ``events_speedup_vs_des_acr`` is an apples-to-apples end-to-end ratio —
  the gated acceptance number.

A small partitioned-mode measurement rides along: the same scenario class
through :mod:`repro.harness.parallel` with ``partitions > 1``, asserting the
merged trace is byte-identical to the single-partition run and recording the
worker clamp (``cpu_count`` / requested / effective / partitions) plus the
multi-process speedup (CPU-gated in ``compare_bench.py``, like
``campaign.parallel_speedup``).
"""

from __future__ import annotations

import os
import resource
import time

from repro.apps.synthetic import synthetic_descriptor
from repro.core.config import ACRConfig
from repro.core.framework import ACR
from repro.harness.parallel import ParallelScenario, run_parallel

KIB = 1024


def _peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_scale_run(
    *,
    nodes_per_replica: int = 64 * KIB,
    total_iterations: int = 6,
    iteration_seconds: float = 10.0,
    checkpoint_interval: float = 60.0,
    seed: int = 3,
    reference_events_per_s: float | None = None,
) -> dict:
    """One failure-free 2×``nodes_per_replica`` ACR run, timed end to end."""
    config = ACRConfig(
        scheme="strong", checkpoint_interval=checkpoint_interval,
        total_iterations=total_iterations, tasks_per_node=1,
        app_scale=1e-4, seed=seed, spare_nodes=0)
    t0 = time.perf_counter()
    acr = ACR("synthetic", nodes_per_replica=nodes_per_replica, config=config,
              app_kwargs={"descriptor": synthetic_descriptor(
                  iteration_seconds=iteration_seconds)})
    t1 = time.perf_counter()
    report = acr.run(until=100.0 * iteration_seconds, max_events=500_000_000)
    wall = time.perf_counter() - t1
    sim, transport = acr.sim, acr.transport
    events = sim.events_processed
    legacy_events = events + transport.batched_messages - transport.batch_events
    node_iterations = 2 * nodes_per_replica * total_iterations
    out = {
        "nodes": 2 * nodes_per_replica,
        "nodes_per_replica": nodes_per_replica,
        "total_iterations": total_iterations,
        "iteration_seconds": iteration_seconds,
        "completed": report.completed,
        "sim_time": sim.now,
        "construct_s": t1 - t0,
        "wall_s": wall,
        "events": events,
        "legacy_equivalent_events": legacy_events,
        "events_per_s": events / wall,
        "legacy_equivalent_events_per_s": legacy_events / wall,
        "node_iterations_per_s": node_iterations / wall,
        "peak_rss_mib": _peak_rss_mib(),
        "max_queue_depth": sim.max_queue_depth,
        "max_cohort_events": sim.max_cohort_events,
    }
    if reference_events_per_s:
        out["events_speedup_vs_des_acr"] = (
            out["legacy_equivalent_events_per_s"] / reference_events_per_s)
    return out


def bench_parallel_mode(
    *,
    nodes_per_replica: int = 2 * KIB,
    total_iterations: int = 8,
    partitions: int = 4,
    seed: int = 7,
) -> dict:
    """Partitioned-mode determinism check + speedup on a mid-size scenario."""
    scenario = ParallelScenario(
        nodes_per_replica=nodes_per_replica,
        total_iterations=total_iterations,
        iteration_seconds=0.5, n_faults=2, fault_window=(0.1, 0.4),
        scheme="strong", snapshot_interval=2.0,
        horizon=total_iterations * 0.5 * 6.0, seed=seed)
    single = run_parallel(scenario, partitions=1, workers=1, trace=True)
    cpus = os.cpu_count() or 1
    requested = min(partitions, cpus) if cpus > 1 else partitions
    multi = run_parallel(scenario, partitions=partitions, workers=requested,
                         trace=True)
    return {
        "nodes": 2 * nodes_per_replica,
        "partitions": partitions,
        "cpu_count": cpus,
        "requested_workers": multi.requested_workers,
        "effective_workers": multi.effective_workers,
        "windows": multi.windows,
        "completed": bool(single.completed and multi.completed),
        "trace_identical": single.trace_digest == multi.trace_digest,
        "trace_digest": single.trace_digest,
        "single_wall_s": single.wall_s,
        "partitioned_wall_s": multi.wall_s,
        "parallel_speedup": single.wall_s / multi.wall_s,
        "events_single": single.events_processed,
        "events_partitioned": multi.events_processed,
    }


def run_all_scale(*, quick: bool = False,
                  reference_events_per_s: float | None = None) -> dict:
    """``bench_scale`` section: the full-scale run + the parallel-mode check.

    ``quick`` trims to the ~8Ki-node smoke configuration the CI
    ``scale_smoke`` job runs inside its wall-clock budget.
    """
    if quick:
        scale = bench_scale_run(
            nodes_per_replica=8 * KIB, total_iterations=3,
            reference_events_per_s=reference_events_per_s)
        parallel = bench_parallel_mode(nodes_per_replica=256,
                                       total_iterations=6, partitions=4)
    else:
        scale = bench_scale_run(reference_events_per_s=reference_events_per_s)
        parallel = bench_parallel_mode()
    scale["quick"] = quick
    scale["parallel"] = parallel
    # Surface the gated metrics at the section's top level for compare_bench.
    scale["parallel_trace_identical"] = parallel["trace_identical"]
    scale["parallel_speedup"] = parallel["parallel_speedup"]
    scale["cpu_count"] = parallel["cpu_count"]
    return {"bench_scale": scale}
