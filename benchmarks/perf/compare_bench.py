#!/usr/bin/env python
"""Gate a fresh perf-benchmark run against the committed baseline.

Usage::

    python benchmarks/perf/run_bench.py --mib 16 --repeats 3 --out bench_ci.json
    python benchmarks/perf/compare_bench.py \
        --baseline BENCH_checkpoint.json --new bench_ci.json --tolerance 0.30

Only *dimensionless* metrics are gated — the speedup ratios that motivated
the hot-path work (zero-copy pack, incremental checksums).  Absolute seconds
and GiB/s vary with the machine, so they are reported but never fail the
gate.  A gated metric regresses when it drops more than ``--tolerance``
below the baseline; improvements never fail.  Exit code 1 on regression,
with a readable delta table either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.report import format_table  # noqa: E402

#: (section, metric) pairs gated by the tolerance — all higher-is-better
#: ratios, stable across machines and payload sizes.
GATED_RATIOS = (
    ("pack", "pack_speedup_vs_legacy"),
    ("pack", "pack_into_speedup_vs_legacy"),
    ("incremental_checksum", "incremental_speedup"),
    ("fletcher", "striped_speedup_vs_seed"),
    ("tiered_persist", "sim_safety_overhead"),
    ("des_dispatch", "dispatch_speedup_vs_legacy"),
    ("des_periodic", "periodic_speedup_vs_resched"),
    ("des_messages", "fastpath_speedup"),
    ("bench_scale", "events_speedup_vs_des_acr"),
)

#: (section, metric, floor) ratios that must also clear an absolute bar —
#: within-run dimensionless ratios, so the floor is machine-independent.
GATED_MINIMUMS = (
    ("bench_scale", "events_speedup_vs_des_acr", 3.0),
    # The atomic protocol can never be cheaper than streaming straight to
    # the final location — a ratio below 1 means the cost model broke.
    ("tiered_persist", "sim_safety_overhead", 1.0),
    # Streaming telemetry at the default cadence must stay within ~5% of
    # the unsampled engine throughput — observability is opt-in AND cheap.
    ("obs_stream", "sampled_rate_ratio", 0.95),
)

#: (section, metric) booleans that must stay true.
GATED_FLAGS = (
    ("campaign", "summaries_identical"),
    ("tiered_persist", "restore_fallback_correct"),
    ("bench_scale", "completed"),
    ("bench_scale", "parallel_trace_identical"),
    # The shm/pipes × partitions trace-identity matrix and the
    # coordinated-consensus-under-parallel check are pure correctness
    # oracles — they must hold on every machine, including 1-CPU runners
    # (forced multiprocess exercises the real planes there too).
    ("bench_scale", "modes_trace_identical"),
    ("bench_scale", "coordinated_parallel_ok"),
    # 2×128Ki completion including the per-worker RSS ceiling.
    ("bench_scale", "xl_completed"),
    # Every benchmark submit must have been a pure cache hit, or the
    # serve.cache_hit_rps measurement is of the wrong path.
    ("serve", "all_hits"),
)

#: Absolute floors gated only on multi-core machines.  The served cache-hit
#: path is pure hashing + one socket round-trip, but on a single core the
#: client and server threads contend for the same CPU and the rate is
#: dominated by scheduler noise.
CPU_GATED_MINIMUMS = (
    ("serve", "cache_hit_rps", 1000.0),
    # Shared-memory plane vs the copy-based pipe plane on the window-heavy
    # 2×64Ki scenario.  On one CPU both planes serialize and the ratio is
    # scheduler noise; with real cores the shm plane must win by 1.3×.
    ("bench_scale", "shm_speedup_vs_copy", 1.3),
)

#: Gated only when the machine can actually go parallel: on a 1-CPU runner
#: the worker clamp makes both paths serial and the ratio is pure noise.
CPU_GATED_RATIOS = (
    ("campaign", "parallel_speedup"),
    ("bench_scale", "parallel_speedup"),
)

#: Machine-dependent metrics shown for context only.
INFORMATIONAL = (
    ("pack", "pack_into_gib_per_s"),
    ("fletcher", "fletcher64_gib_per_s"),
    ("tiered_persist", "persist_gib_per_s"),
    ("tiered_persist", "sha_share_of_persist"),
    ("des_dispatch", "events_per_s"),
    ("des_acr", "events_per_s"),
    ("des_acr", "legacy_equivalent_events_per_s"),
    ("obs_stream", "sampled_events_per_s"),
    ("obs_stream", "unsampled_events_per_s"),
    ("bench_scale", "events_per_s"),
    ("bench_scale", "legacy_equivalent_events_per_s"),
    ("bench_scale", "node_iterations_per_s"),
    ("bench_scale", "peak_rss_mib"),
    ("bench_scale", "shm_events_per_s"),
    ("bench_scale", "copy_events_per_s"),
    ("bench_scale", "max_worker_rss_mib"),
    ("serve", "cache_hit_rps"),
    ("serve", "p50_ms"),
    ("serve", "p99_ms"),
)


def _lookup(results: dict, section: str, metric: str):
    return (results.get(section) or {}).get(metric)


def compare(baseline: dict, fresh: dict, tolerance: float) -> tuple[list, list]:
    """(table_rows, failures) for a baseline/fresh results comparison."""
    rows: list[list] = []
    failures: list[str] = []

    def gate_ratio(section: str, metric: str) -> None:
        name = f"{section}.{metric}"
        base = _lookup(baseline, section, metric)
        new = _lookup(fresh, section, metric)
        if base is None or new is None:
            failures.append(f"{name}: missing from "
                            f"{'baseline' if base is None else 'new run'}")
            rows.append([name, base, new, "-", "MISSING"])
            return
        delta_pct = 100.0 * (new - base) / base if base else 0.0
        regressed = new < base * (1.0 - tolerance)
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            failures.append(
                f"{name}: {new:.3f} is {-delta_pct:.1f}% below baseline "
                f"{base:.3f} (tolerance {100.0 * tolerance:.0f}%)"
            )
        rows.append([name, round(base, 3), round(new, 3),
                     f"{delta_pct:+.1f}%", status])

    for section, metric in GATED_RATIOS:
        gate_ratio(section, metric)
    for section, metric, floor in GATED_MINIMUMS:
        name = f"{section}.{metric}"
        new = _lookup(fresh, section, metric)
        ok = new is not None and new >= floor
        if not ok:
            failures.append(f"{name}: {new!r} below required floor {floor}")
        rows.append([f"{name} >= {floor}", floor,
                     None if new is None else round(new, 3), "-",
                     "ok" if ok else "REGRESSION"])
    for section, metric, floor in CPU_GATED_MINIMUMS:
        name = f"{section}.{metric}"
        new = _lookup(fresh, section, metric)
        cpus = _lookup(fresh, section, "cpu_count") or 1
        if cpus <= 1:
            rows.append([f"{name} >= {floor}", floor,
                         None if new is None else round(new, 3), "-",
                         "skipped (cpu_count==1)"])
            continue
        ok = new is not None and new >= floor
        if not ok:
            failures.append(f"{name}: {new!r} below required floor {floor}")
        rows.append([f"{name} >= {floor}", floor,
                     None if new is None else round(new, 3), "-",
                     "ok" if ok else "REGRESSION"])
    for section, metric in CPU_GATED_RATIOS:
        # A parallel ratio means nothing unless both runs had cores to use.
        cpus = min(_lookup(baseline, section, "cpu_count") or 1,
                   _lookup(fresh, section, "cpu_count") or 1)
        if cpus > 1:
            gate_ratio(section, metric)
        else:
            base = _lookup(baseline, section, metric)
            new = _lookup(fresh, section, metric)
            rows.append([f"{section}.{metric}",
                         None if base is None else round(base, 3),
                         None if new is None else round(new, 3),
                         "-", "skipped (cpu_count==1)"])
    for section, metric in GATED_FLAGS:
        name = f"{section}.{metric}"
        base = _lookup(baseline, section, metric)
        new = _lookup(fresh, section, metric)
        ok = bool(new)
        if not ok:
            failures.append(f"{name}: expected true, got {new!r}")
        rows.append([name, base, new, "-", "ok" if ok else "REGRESSION"])
    for section, metric in INFORMATIONAL:
        name = f"{section}.{metric}"
        base = _lookup(baseline, section, metric)
        new = _lookup(fresh, section, metric)
        if base is None or new is None:
            continue
        delta_pct = 100.0 * (new - base) / base if base else 0.0
        rows.append([name, round(base, 3), round(new, 3),
                     f"{delta_pct:+.1f}%", "info"])
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_checkpoint.json")
    parser.add_argument("--new", type=Path, required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below baseline "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["results"]
    fresh = json.loads(args.new.read_text())["results"]
    rows, failures = compare(baseline, fresh, args.tolerance)
    print(format_table(
        ["metric", "baseline", "new", "delta", "status"], rows,
        title=f"perf gate: {args.new} vs {args.baseline} "
              f"(tolerance {100.0 * args.tolerance:.0f}%)"))
    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
