"""Micro-benchmarks for the discrete-event simulation engine hot path.

Every campaign cell, chaos run, and figure sweep spends its life inside
``Simulator.run`` dispatching millions of tiny events, so this file tracks
the engine the same way ``bench_checkpoint.py`` tracks the pack/checksum
path: each layer against its reference baseline, emitting dimensionless
speedups that ``compare_bench.py`` gates in CI.

* **event dispatch** — the tuple-heap engine's fire-and-forget path
  (:meth:`Simulator.post`, what message deliveries use) vs a verbatim
  embedded replica of the pre-overhaul engine (dataclass ``_QueueEntry``
  with ``order=True`` Python-level comparisons, a handle per event) on an
  identical self-sustaining event storm; a handle-allocating
  ``schedule``-vs-``schedule`` ratio rides along for the apples-to-apples
  view;
* **periodic timers** — ``schedule_periodic`` (in-engine rescheduling) vs
  the classic callback-reschedules-itself pattern through the public API,
  on both engines;
* **message fan-out** — ``Transport.send_small`` (the heartbeat/dependency-
  stamp fast path) vs ``send(Message(...))``, plus a replica of the
  pre-overhaul per-send bookkeeping for the before/after trajectory;
* **end-to-end** — a small full ``ACR`` run measured in events/second
  (machine-dependent, informational only).

All workloads are deterministic (an inline LCG, no wall-clock randomness),
so both engines execute the exact same event sequence.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from repro.runtime.des import Simulator
from repro.runtime.messages import Message, MsgKind, Transport
from repro.util.errors import SimulationError

MIB = float(1 << 20)


# ---------------------------------------------------------------------------
# The pre-overhaul engine, embedded verbatim as the dispatch baseline — the
# same validation, counters, and ``pending`` property its hot loop really
# paid, so the speedup is honest (a leaner replica flatters the baseline).
# ---------------------------------------------------------------------------

@dataclass(order=True)
class _LegacyQueueEntry:
    time: float
    seq: int
    handle: "_LegacyHandle" = dc_field(compare=False)


class _LegacyHandle:
    __slots__ = ("callback", "args", "cancelled", "fired", "time")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)


class LegacySimulator:
    """The pre-overhaul engine: dataclass heap entries, a handle per event."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_LegacyQueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.max_queue_depth = 0

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> _LegacyHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> _LegacyHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        handle = _LegacyHandle(time, callback, args)
        heapq.heappush(self._heap, _LegacyQueueEntry(time, next(self._seq), handle))
        self.events_scheduled += 1
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)
        return handle

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                entry = self._heap[0]
                if until is not None and entry.time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                handle = entry.handle
                if not handle.pending:
                    self.events_cancelled += 1
                    continue
                if max_events is not None and self.events_processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                self.now = entry.time
                handle.fired = True
                self.events_processed += 1
                handle.callback(*handle.args)
            else:
                if until is not None and not self._heap and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now


# ---------------------------------------------------------------------------
# Workloads (identical event sequences on either engine)
# ---------------------------------------------------------------------------

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407
_LCG_MASK = (1 << 64) - 1
_DELAY_TABLE = 4096  # power of two so the storm can mask instead of mod


def _make_delays(n: int = _DELAY_TABLE) -> list[float]:
    """Deterministic pseudo-random delays, precomputed so the benchmark
    callback costs the same handful of bytecodes on either engine."""
    state = 0x9E3779B97F4A7C15
    delays = []
    for _ in range(n):
        state = (state * _LCG_MUL + _LCG_ADD) & _LCG_MASK
        delays.append(1e-6 + (state >> 40) * 1e-12)
    return delays


class _DispatchStorm:
    """Self-sustaining event storm: every firing schedules one successor at a
    precomputed pseudo-random delay, holding the heap ``depth`` entries deep —
    the regime real runs live in, where every push/pop pays ``log(depth)``
    sift comparisons."""

    __slots__ = ("sched", "delays", "fired", "n_events")

    def __init__(self, sched: Callable[..., Any], delays: list[float],
                 n_events: int):
        self.sched = sched
        self.delays = delays
        self.fired = 0
        self.n_events = n_events

    def prime(self, depth: int) -> None:
        sched = self.sched
        delays = self.delays
        tick = self.tick
        for i in range(depth):
            sched(delays[i & 4095], tick)

    def tick(self) -> None:
        i = self.fired
        self.fired = i + 1
        if i < self.n_events:
            self.sched(self.delays[i & 4095], self.tick)


def _time_storm(sim: Any, sched: Callable[..., Any], n_events: int,
                depth: int, delays: list[float]) -> tuple[float, int]:
    storm = _DispatchStorm(sched, delays, n_events)
    storm.prime(depth)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return elapsed, sim.events_processed


def bench_event_dispatch(n_events: int = 200_000, depth: int = 4096,
                         repeats: int = 3) -> dict:
    """Tuple-heap dispatch vs the legacy dataclass-entry engine.

    The headline ratio compares each engine's natural per-event path: the
    legacy engine *had* to allocate a ``_LegacyHandle`` + ``_LegacyQueueEntry``
    per event, the new engine's deliveries go through :meth:`Simulator.post`
    (no handle at all).  ``dispatch_handle_speedup_vs_legacy`` is the
    conservative same-API comparison (``schedule`` vs ``schedule``).
    """
    delays = _make_delays()
    t_new = t_handle = t_legacy = float("inf")
    processed = 0
    for _ in range(repeats):
        sim = Simulator()
        elapsed, processed = _time_storm(sim, sim.post, n_events, depth, delays)
        t_new = min(t_new, elapsed)
        sim = Simulator()
        elapsed, handle_processed = _time_storm(sim, sim.schedule, n_events,
                                                depth, delays)
        t_handle = min(t_handle, elapsed)
        legacy = LegacySimulator()
        elapsed, legacy_processed = _time_storm(legacy, legacy.schedule,
                                                n_events, depth, delays)
        t_legacy = min(t_legacy, elapsed)
        assert legacy_processed == processed == handle_processed, \
            "engines diverged on the storm"
    return {
        "n_events": processed,
        "queue_depth": depth,
        "legacy_dispatch_s": t_legacy,
        "dispatch_s": t_new,
        "dispatch_handle_s": t_handle,
        "dispatch_speedup_vs_legacy": t_legacy / t_new,
        "dispatch_handle_speedup_vs_legacy": t_legacy / t_handle,
        "events_per_s": processed / t_new,
        "legacy_events_per_s": processed / t_legacy,
    }


def _time_resched(sim_cls: Any, n_timers: int, horizon: float,
                  interval: float) -> tuple[float, int]:
    """The classic pattern: every tick reschedules itself via the public API."""
    sim = sim_cls()
    fired = [0]

    def make_tick():
        def tick():
            fired[0] += 1
            sim.schedule(interval, tick)
        return tick

    for _ in range(n_timers):
        sim.schedule(interval, make_tick())
    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, fired[0]


def _time_periodic(n_timers: int, horizon: float,
                   interval: float) -> tuple[float, int]:
    sim = Simulator()
    fired = [0]

    def tick():
        fired[0] += 1

    for _ in range(n_timers):
        sim.schedule_periodic(interval, tick)
    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, fired[0]


def bench_periodic_timers(n_timers: int = 64, ticks: int = 2000,
                          repeats: int = 3) -> dict:
    """In-engine periodic rescheduling vs self-rescheduling public ticks.

    Models the heartbeat monitor's load: ``n_timers`` recurring timers each
    firing ``ticks`` times.  The baseline is the pre-overhaul pattern (each
    tick re-enters ``schedule`` and allocates a fresh handle); the legacy
    engine running the same pattern gives the absolute before/after point.
    """
    interval = 0.5
    horizon = ticks * interval
    t_resched = t_periodic = t_legacy = float("inf")
    fired = 0
    for _ in range(repeats):
        elapsed, fired = _time_resched(Simulator, n_timers, horizon, interval)
        t_resched = min(t_resched, elapsed)
        elapsed, fired_p = _time_periodic(n_timers, horizon, interval)
        t_periodic = min(t_periodic, elapsed)
        elapsed, fired_l = _time_resched(LegacySimulator, n_timers, horizon,
                                         interval)
        t_legacy = min(t_legacy, elapsed)
        assert fired == fired_p == fired_l, "timer workloads diverged"
    return {
        "n_timers": n_timers,
        "ticks_fired": fired,
        "resched_s": t_resched,
        "periodic_s": t_periodic,
        "legacy_resched_s": t_legacy,
        "periodic_speedup_vs_resched": t_resched / t_periodic,
        "periodic_speedup_vs_legacy": t_legacy / t_periodic,
        "ticks_per_s": fired / t_periodic,
    }


class _LegacyStyleTransport(Transport):
    """Replica of the pre-overhaul per-send bookkeeping: enum ``.value``
    descriptor per message, ``.get`` accounting, handle-allocating
    ``sim.schedule`` for the delivery."""

    def send(self, msg: Message, *, extra_delay: float = 0.0) -> None:
        if msg.dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {msg.dst}")
        if not self._alive.get(msg.src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kind = msg.kind.value
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + msg.nbytes
        msg.send_time = self.sim.now
        delay = self.latency + msg.nbytes / self.bandwidth + extra_delay
        self.sim.schedule(delay, self._deliver, msg)


def _drain_sends(transport: Transport, sender: Callable[[int, int], None],
                 n_nodes: int, rounds: int) -> float:
    """Send ``rounds`` all-to-next-neighbor bursts, draining deliveries."""
    sim = transport.sim
    t0 = time.perf_counter()
    for _ in range(rounds):
        for src in range(n_nodes):
            sender(src, (src + 1) % n_nodes)
        sim.run()
    return time.perf_counter() - t0


def bench_message_fanout(n_nodes: int = 32, rounds: int = 200,
                         repeats: int = 3) -> dict:
    """``send_small`` fast path vs ``send(Message(...))`` vs legacy send."""
    sink = [0]

    def build(transport_cls):
        sim = Simulator()
        transport = transport_cls(sim)
        for i in range(n_nodes):
            transport.register(i, lambda msg: sink.__setitem__(0, sink[0] + 1))
        return transport

    n_msgs = n_nodes * rounds
    t_small = t_send = t_legacy = float("inf")
    for _ in range(repeats):
        tr = build(Transport)
        t_small = min(t_small, _drain_sends(
            tr,
            lambda s, d: tr.send_small(MsgKind.HEARTBEAT, s, d,
                                       nbytes=16, tag="hb"),
            n_nodes, rounds))
        tr2 = build(Transport)
        t_send = min(t_send, _drain_sends(
            tr2,
            lambda s, d: tr2.send(Message(kind=MsgKind.HEARTBEAT, src=s,
                                          dst=d, nbytes=16, tag="hb")),
            n_nodes, rounds))
        tr3 = build(_LegacyStyleTransport)
        t_legacy = min(t_legacy, _drain_sends(
            tr3,
            lambda s, d: tr3.send(Message(kind=MsgKind.HEARTBEAT, src=s,
                                          dst=d, nbytes=16, tag="hb")),
            n_nodes, rounds))
    return {
        "n_nodes": n_nodes,
        "messages": n_msgs,
        "send_small_s": t_small,
        "send_s": t_send,
        "legacy_send_s": t_legacy,
        "fastpath_speedup": t_send / t_small,
        "fastpath_speedup_vs_legacy": t_legacy / t_small,
        "messages_per_s": n_msgs / t_small,
    }


def bench_acr_run(total_iterations: int = 200) -> dict:
    """End-to-end small-config ACR run in events/second (informational)."""
    from repro.harness.experiment import run_acr_experiment

    t0 = time.perf_counter()
    res = run_acr_experiment(
        "jacobi3d-charm", nodes_per_replica=4,
        total_iterations=total_iterations, checkpoint_interval=2.0,
        hard_mtbf=15.0, sdc_mtbf=25.0, seed=3)
    elapsed = time.perf_counter() - t0
    events = res.acr.sim.events_processed
    transport = res.acr.transport
    # Pre-batching granularity: one heap event per message.  The batched
    # engine settles a fan-out/sweep of k messages in one event, so the
    # legacy-equivalent count restores the unit the historical baseline
    # (and any cross-engine comparison) is measured in.
    legacy_events = (events + transport.batched_messages
                     - transport.batch_events)
    return {
        "total_iterations": total_iterations,
        "events": events,
        "legacy_equivalent_events": legacy_events,
        "wall_s": elapsed,
        "events_per_s": events / elapsed,
        "legacy_equivalent_events_per_s": legacy_events / elapsed,
        "completed": res.report.completed,
    }


def run_all_des(*, quick: bool = False, repeats: int = 3) -> dict:
    """Run every engine micro-benchmark; ``quick`` shrinks sizes for smoke."""
    if quick:
        return {
            "des_dispatch": bench_event_dispatch(n_events=5_000, depth=256,
                                                 repeats=1),
            "des_periodic": bench_periodic_timers(n_timers=8, ticks=100,
                                                  repeats=1),
            "des_messages": bench_message_fanout(n_nodes=8, rounds=20,
                                                 repeats=1),
            "des_acr": bench_acr_run(total_iterations=20),
        }
    return {
        "des_dispatch": bench_event_dispatch(repeats=repeats),
        "des_periodic": bench_periodic_timers(repeats=repeats),
        "des_messages": bench_message_fanout(repeats=repeats),
        "des_acr": bench_acr_run(),
    }
