"""Ablation — the §4.2 checksum break-even rule: γ < β/4.

"Assuming a system that has the communication cost per byte of β and
computation cost of γ per byte, the difference in cost of the two schemes is
(β − 4γ) × n.  Hence, using the checksum shows benefits only when γ < β/4."

We sweep the compute/communication cost ratio and verify the cost model's
preferred detection method flips exactly where the rule says it should.
"""

from repro.harness.report import format_table
from repro.network.allocation import intrepid_allocation
from repro.network.costs import CheckpointProfile, CostModel, MachineConstants
from repro.network.mapping import build_mapping
from repro.util.units import MiB


def _sweep():
    """Vary gamma/beta via the serialization bandwidth; compare methods."""
    profile = CheckpointProfile(nbytes_per_node=16 * MiB)
    alloc = intrepid_allocation(16384)
    rows = []
    link_bw = 167e6
    for ratio in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 16.0):
        # gamma = 1 / (ratio * link_bw)  =>  gamma/beta = 1/ratio.
        machine = MachineConstants(link_bandwidth=link_bw,
                                   serialization_bandwidth=ratio * link_bw,
                                   compare_bandwidth=ratio * link_bw,
                                   sync_per_stage=0.0, alpha=0.0)
        cost = CostModel(machine)
        mapping = build_mapping(alloc.torus, "column")
        full = cost.checkpoint_breakdown(profile, mapping, use_checksum=False)
        digest = cost.checkpoint_breakdown(profile, mapping, use_checksum=True)
        rule_says_checksum = cost.checksum_beneficial()
        rows.append([ratio, round(1.0 / ratio, 3), round(full.total, 4),
                     round(digest.total, 4), digest.total < full.total,
                     rule_says_checksum])
    return rows


def test_ablation_checksum_breakeven(benchmark, emit):
    rows = benchmark(_sweep)

    emit(format_table(
        ["serialize_bw / link_bw", "gamma/beta", "full compare (s)",
         "checksum (s)", "checksum faster?", "rule: gamma < beta/4"],
        rows,
        title="Ablation: checksum vs full-checkpoint comparison break-even "
              "(column mapping, 16 MiB/node)",
    ))

    # The model's winner agrees with the analytical rule at every point
    # away from the exact break-even (ratio == 4 -> tie).
    for ratio, _, full, digest, checksum_faster, rule in rows:
        if ratio == 4.0:
            assert abs(full - digest) / full < 0.35  # near-tie at break-even
        else:
            assert checksum_faster == rule, ratio
    # Far ends behave as the paper argues.
    assert rows[0][4] is False      # gamma = 2*beta: transfer wins
    assert rows[-1][4] is True      # gamma = beta/16: checksum wins
