"""Figure 12 — adaptivity of ACR to a decreasing failure rate.

Paper: a 30-minute Jacobi3D run on 512 BG/P cores with 19 failures injected
from a Weibull process (shape 0.6).  ACR observes the failure stream, fits
the distribution online, and stretches the checkpoint period as the hazard
decays — 6 s between checkpoints early in the run, ~17 s at the end.

This benchmark runs the full discrete-event stack (consensus, heartbeats,
PUP checkpoints, medium-scheme recoveries) on a reduced node count so it
finishes in seconds; ``fig12_data(nodes_per_replica=64, ...)`` reproduces the
paper-sized 512-core run.
"""

from repro.harness.figures import fig12_data
from repro.harness.report import format_table


def test_fig12_adaptivity(benchmark, emit):
    result = benchmark.pedantic(
        fig12_data,
        kwargs=dict(nodes_per_replica=8, horizon=900.0, failures=14,
                    seed=3, initial_interval=6.0),
        iterations=1, rounds=1,
    )
    report = result.report

    emit(format_table(
        ["metric", "value"],
        [
            ["failures injected", report.hard_injected],
            ["failures detected", report.hard_detected],
            ["recoveries", str(report.recoveries)],
            ["checkpoints completed", report.checkpoints_completed],
            ["mean interval (first fifth)", round(result.early_mean_interval, 2)],
            ["mean interval (last fifth)", round(result.late_mean_interval, 2)],
        ],
        title="Figure 12: adaptive checkpointing under Weibull(0.6) failures",
    ))
    emit("Figure 12 timeline ('X' = failure injected, '|' = checkpoint):\n"
         + result.ascii_timeline)
    intervals = [f"{v:.1f}" for _, v in result.intervals]
    emit("adaptive interval trajectory (s): " + " ".join(intervals))

    # Every injected failure is detected and survived.
    assert report.hard_detected == report.hard_injected > 5
    assert report.aborted_reason is None
    # The Figure-12 signature: checkpoints sparser late than early.
    assert report.checkpoints_completed > 10
    assert result.late_mean_interval > 1.3 * result.early_mean_interval
    # The controller's fitted interval grew as the hazard decayed.
    assert result.intervals[-1][1] > result.intervals[0][1]
