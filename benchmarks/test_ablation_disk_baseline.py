"""Ablation — ACR vs traditional disk checkpoint/restart (paper §1).

"The common approach currently is to tolerate intermittent faults by
periodically checkpointing the state of the application to disk ... If the
data size is large, the expense of checkpointing to disk may be prohibitive."

Disk checkpoints of a single (non-replicated) job image stream through a
shared parallel filesystem, so δ grows linearly with the job's data while
ACR's buddy checkpoint stays constant (in-memory, pairwise).  We sweep the
machine size on two PFS speeds: the disk baseline starts near 100% utilization
and erodes — and it never detects SDC — while ACR holds near its 50%
replication ceiling with zero vulnerability.
"""

from repro.harness.report import format_table
from repro.model.alternatives import solve_disk_checkpoint_restart
from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme, best_solution
from repro.util.units import HOURS, MiB

SOCKETS_AXIS = (1024, 4096, 16384, 65536, 262144)
BYTES_PER_SOCKET = 16 * MiB * 4          # a Jacobi3D-class node image
PFS_FAST = 50e9                          # 50 GB/s parallel filesystem
PFS_SLOW = 5e9


def _sweep():
    rows = []
    for sockets in SOCKETS_AXIS:
        p = ModelParams(work=24 * HOURS, delta=15.0,
                        sockets_per_replica=sockets, sdc_fit_socket=100.0)
        acr = best_solution(p, ResilienceScheme.STRONG)
        fast = solve_disk_checkpoint_restart(
            p, bytes_per_socket=BYTES_PER_SOCKET, pfs_bandwidth=PFS_FAST)
        slow = solve_disk_checkpoint_restart(
            p, bytes_per_socket=BYTES_PER_SOCKET, pfs_bandwidth=PFS_SLOW)
        rows.append([
            sockets,
            round(fast.delta_disk, 1), round(fast.utilization, 4),
            round(slow.delta_disk, 1), round(slow.utilization, 4),
            round(acr.utilization, 4),
            round(fast.vulnerability, 4),
        ])
    return rows


def test_ablation_disk_baseline(benchmark, emit):
    rows = benchmark(_sweep)

    emit(format_table(
        ["sockets", "disk delta fast (s)", "disk util (50 GB/s)",
         "disk delta slow (s)", "disk util (5 GB/s)", "ACR util (strong)",
         "disk vulnerability"],
        rows,
        title="Ablation: disk checkpoint/restart vs ACR "
              "(24 h job, 64 MiB/socket image, 100 FIT/socket)",
    ))

    by = {r[0]: r for r in rows}
    # Disk delta grows linearly with the machine.
    assert by[262144][1] > 200 * by[1024][1]
    # Fast-PFS disk utilization erodes monotonically with scale.
    utils_fast = [by[s][2] for s in SOCKETS_AXIS]
    assert utils_fast == sorted(utils_fast, reverse=True)
    # On the slow PFS, ACR's 50%-ceiling beats disk C/R at the largest scale.
    assert by[262144][5] > by[262144][4]
    # ACR stays near its ceiling across the sweep.
    assert min(by[s][5] for s in SOCKETS_AXIS) > 0.44
    # And the disk baseline is blind to SDC (vulnerability grows with scale).
    assert by[262144][6] > by[1024][6] > 0
