"""End-to-end measured scheme comparison on the full DES stack.

The model benches (Figs. 9/11) predict the scheme trade-offs analytically;
this bench *measures* them: the same multi-seed Poisson fault campaign runs
under strong, medium, and weak recovery, and the measured ordering must
reproduce the paper's — strong reworks the most and runs longest, weak and
medium run faster, and only strong guarantees bit-correct results (medium and
weak stay *mostly* correct, their windows being short relative to the run).
"""

import numpy as np

from repro.harness.campaign import run_campaign
from repro.harness.report import format_table

SEEDS = range(4)


def _campaigns(cache=None):
    out = {}
    for scheme in ("strong", "medium", "weak"):
        out[scheme] = run_campaign(
            "jacobi3d-charm",
            seeds=SEEDS,
            nodes_per_replica=4,
            scheme=scheme,
            total_iterations=300,
            checkpoint_interval=3.0,
            hard_mtbf=15.0,
            sdc_mtbf=25.0,
            horizon=5000.0,
            spare_nodes=64,
            cache=cache,
        )
    return out


def test_e2e_scheme_comparison(benchmark, emit, campaign_cache):
    campaigns = benchmark.pedantic(
        _campaigns, kwargs={"cache": campaign_cache}, iterations=1, rounds=1)

    rows = []
    for scheme, c in campaigns.items():
        s = c.summary
        makespans = [r.final_time for r in c.reports if r.completed]
        rows.append([
            scheme, s.runs, s.completed_runs,
            round(float(np.mean(makespans)), 2) if makespans else "-",
            round(s.mean_rework_iterations, 1),
            s.total_hard_faults, s.total_sdc,
            round(s.correctness_rate, 3),
        ])
    emit(format_table(
        ["scheme", "runs", "completed", "mean makespan (s)",
         "mean rework iters", "hard faults", "SDC detected", "correct rate"],
        rows,
        title="Measured scheme comparison: 4-seed Poisson campaign "
              "(hard MTBF 15 s, SDC MTBF 25 s, Jacobi3D)",
    ))

    strong = campaigns["strong"].summary
    medium = campaigns["medium"].summary
    weak = campaigns["weak"].summary
    # Every run of every scheme survives the fault storm.
    for s in (strong, medium, weak):
        assert s.completion_rate == 1.0
        assert s.total_hard_faults > 0
    # Strong detects every SDC and is always bit-correct.
    assert strong.correctness_rate == 1.0
    assert strong.total_sdc > 0
    # Strong reworks more than medium (the §2.3 trade-off: medium recovers
    # forward from an immediate checkpoint, strong rolls back).
    assert strong.mean_rework_iterations > medium.mean_rework_iterations
    # Weak is zero-rework per hard error *except* its documented catastrophic
    # case (a second failure on the crashed node's buddy forces a restart
    # from the beginning): compare per-seed on the ordinary runs.
    for strong_rep, weak_rep in zip(campaigns["strong"].reports,
                                    campaigns["weak"].reports):
        if "restart-from-beginning" not in weak_rep.recoveries:
            assert weak_rep.rework_iterations <= strong_rep.rework_iterations
