"""Figure 7 — model-predicted utilization and undetected-SDC probability.

Paper (24 h job, M_H = 50 y/socket, 100 FIT/socket, δ ∈ {15 s, 180 s},
1K–256K sockets per replica):

* 7(a): with δ=15 s every scheme stays above ~45% utilization even at 256K
  sockets; with δ=180 s strong drops toward ~37% while weak/medium hold ~43%.
* 7(b): undetected-SDC probability is negligible up to 16K sockets, <~1% for
  medium at 64K (δ=15 s), and high at 256K; at equal checkpoint period the
  medium scheme halves the weak scheme's probability.
"""

import pytest

from repro.harness.report import format_table
from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme
from repro.model.surfaces import fig7_curves
from repro.model.vulnerability import undetected_sdc_probability
from repro.util.units import HOURS

SOCKETS = (1024, 4096, 16384, 65536, 262144)


def test_fig07_utilization_and_vulnerability(benchmark, emit):
    points = benchmark(fig7_curves, SOCKETS, (15.0, 180.0))

    emit(format_table(
        ["sockets/replica", "delta(s)", "scheme", "tau_opt(s)",
         "utilization", "P(undetected SDC)"],
        [[p.sockets_per_replica, p.delta, str(p.scheme), round(p.tau_opt, 1),
          round(p.utilization, 4), round(p.undetected_sdc_probability, 5)]
         for p in points],
        title="Figure 7(a)+(b): model utilization and undetected-SDC probability",
    ))

    by = {(p.sockets_per_replica, p.delta, p.scheme): p for p in points}
    # 7(a) delta=15s: everything above ~45% at 256K sockets.
    for scheme in ResilienceScheme:
        assert by[(262144, 15.0, scheme)].utilization > 0.44
    # 7(a) delta=180s: strong sinks, weak/medium hold.
    assert by[(262144, 180.0, ResilienceScheme.STRONG)].utilization < 0.40
    assert by[(262144, 180.0, ResilienceScheme.MEDIUM)].utilization > 0.40
    assert by[(262144, 180.0, ResilienceScheme.WEAK)].utilization > 0.40
    # 7(b): negligible at small scale, high at 256K with delta=180s.
    assert by[(1024, 15.0, ResilienceScheme.WEAK)].undetected_sdc_probability < 0.01
    assert by[(262144, 180.0, ResilienceScheme.WEAK)].undetected_sdc_probability > 0.15
    # strong is always fully protected.
    for s in SOCKETS:
        assert by[(s, 15.0, ResilienceScheme.STRONG)].undetected_sdc_probability == 0.0


def test_fig07b_medium_halves_weak_at_equal_tau(benchmark, emit):
    """§5's headline comparison, held at a common checkpoint period."""

    def build_rows():
        rows = []
        for sockets in SOCKETS:
            p = ModelParams(work=24 * HOURS, delta=15.0,
                            sockets_per_replica=sockets, sdc_fit_socket=100.0)
            tau = 1000.0
            pm = undetected_sdc_probability(p, "medium", tau)
            pw = undetected_sdc_probability(p, "weak", tau)
            rows.append([sockets, pm, pw,
                         round(pm / pw, 3) if pw else float("nan")])
        return rows

    rows = benchmark(build_rows)
    # The factor-2 claim holds exactly in the linear (small-probability)
    # regime; at 256K sockets the exponential saturation and the T_M/T_W
    # difference bend it slightly (ratio 0.525).
    for sockets, pm, pw, _ratio in rows:
        if pw > 1e-9:
            assert pm == pytest.approx(pw / 2, rel=0.08)
    emit(format_table(
        ["sockets/replica", "P_undetected medium", "P_undetected weak",
         "ratio"],
        rows,
        title="Figure 7(b) corollary: medium halves weak at equal tau",
    ))
