"""Figure 9 — forward-path (checkpointing) overhead at the optimal period.

Paper (M_H = 50 years/socket, SDC 10,000 FIT/socket; Jacobi3D and LeanMD;
1K/4K/16K sockets per replica):

* optimal checkpoint period at 16K sockets, default mapping: ~133 s for
  Jacobi3D and ~24 s for LeanMD;
* the default-mapping overhead (~1.5%) is halved by either the checksum or
  the topology-mapping optimization;
* strong resilience shows slightly higher overhead (it checkpoints more
  often to bound its extra rework);
* overhead grows with socket count (failure rate grows with the machine).
"""

import pytest

from repro.harness.figures import FIG9_VARIANTS, fig9_fig11_data
from repro.harness.report import format_table


def test_fig09_forward_path_overhead(benchmark, emit):
    rows = benchmark(fig9_fig11_data, ("jacobi3d-charm", "leanmd"),
                     (1024, 4096, 16384))

    for app in ("jacobi3d-charm", "leanmd"):
        emit(format_table(
            ["sockets/replica", "variant", "scheme", "delta(s)", "tau_opt(s)",
             "ckpt overhead %"],
            [[r.sockets_per_replica, r.variant, r.scheme, round(r.delta, 3),
              round(r.tau_opt, 1), round(r.checkpoint_overhead_pct, 3)]
             for r in rows if r.app == app],
            title=f"Figure 9 ({app}): forward-path overhead per replica",
        ))

    def pick(app, sockets, scheme, variant):
        for r in rows:
            if (r.app, r.sockets_per_replica, r.scheme, r.variant) == (
                    app, sockets, scheme, variant):
                return r
        raise KeyError

    # The paper's stated optimal intervals at 16K sockets, default mapping.
    assert pick("jacobi3d-charm", 16384, "strong", "default").tau_opt == \
        pytest.approx(133.0, rel=0.25)
    assert pick("leanmd", 16384, "strong", "default").tau_opt == \
        pytest.approx(24.0, rel=0.45)
    # Default-mapping overhead is low (paper: ~1.5%) ...
    base = pick("jacobi3d-charm", 16384, "weak", "default")
    assert base.checkpoint_overhead_pct < 2.5
    # ... and either optimization halves it.
    for variant in ("column", "default+checksum"):
        opt = pick("jacobi3d-charm", 16384, "weak", variant)
        assert opt.checkpoint_overhead_pct < 0.7 * base.checkpoint_overhead_pct
    # Strong >= medium/weak overhead everywhere.
    for app in ("jacobi3d-charm", "leanmd"):
        for sockets in (1024, 4096, 16384):
            for variant in FIG9_VARIANTS:
                strong = pick(app, sockets, "strong", variant)
                for other in ("medium", "weak"):
                    assert strong.checkpoint_overhead_pct >= \
                        pick(app, sockets, other, variant).checkpoint_overhead_pct - 1e-9
    # Overhead grows with socket count.
    small = pick("jacobi3d-charm", 1024, "strong", "default")
    large = pick("jacobi3d-charm", 16384, "strong", "default")
    assert large.checkpoint_overhead_pct > small.checkpoint_overhead_pct
