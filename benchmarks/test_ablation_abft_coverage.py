"""Ablation — runtime SDC detection vs algorithm-based FT (paper §3.2).

"One may need to have in-depth knowledge of the application domain and make
significant modifications to the code in order to use them.  In contrast, a
runtime-based method is universal and works transparently."

We built the alternative (checksummed conjugate gradient, Huang-Abraham
style) and measure detection coverage over random bit flips in live state:
ABFT only sees corruption in the vectors it instruments and above its
floating-point tolerance, while ACR's bit-exact replica comparison catches
every flip in anything the application checkpoints.
"""

from repro.apps.abft import detection_coverage_experiment
from repro.harness.report import format_table


def test_ablation_abft_coverage(benchmark, emit):
    result = benchmark.pedantic(
        detection_coverage_experiment,
        kwargs=dict(flips=150, iterations_between=3, seed=7),
        iterations=1, rounds=1,
    )

    emit(format_table(
        ["detector", "detection rate over random bit flips"],
        [
            ["ACR replica comparison (bit-exact)",
             result["replica_detection_rate"]],
            ["ABFT checksummed CG", result["abft_detection_rate"]],
            ["  - missed: flip hit unguarded state (b, ...)",
             result["abft_miss_unguarded_rate"]],
            ["  - missed: flip below FP tolerance",
             result["abft_miss_below_tolerance_rate"]],
        ],
        title="Ablation: SDC detection coverage, 150 random single-bit flips "
              "in HPCCG state",
    ))

    assert result["replica_detection_rate"] == 1.0
    assert result["abft_detection_rate"] < result["replica_detection_rate"]
    # Both structural miss modes of the algorithm-specific approach show up.
    assert result["abft_miss_unguarded_rate"] > 0.05
    assert result["abft_miss_below_tolerance_rate"] > 0.05
