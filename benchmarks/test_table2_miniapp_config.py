"""Table 2 — mini-application configurations and memory pressure.

Paper: per-core configurations (Jacobi3D 64*64*128 grid points, HPCCG
40*40*40, LULESH 32*32*64 elements, LeanMD 4000 atoms, miniMD 1000 atoms)
with the first three classed high memory pressure and the MD apps low.
The checkpoint footprints drive every timing figure, so we report declared
bytes/core alongside a measured functional checkpoint from live state.
"""

from repro.apps.registry import MINIAPP_NAMES, descriptor, make_app
from repro.harness.report import format_table
from repro.pup import pack


def _build_rows():
    rows = []
    for name in MINIAPP_NAMES:
        d = descriptor(name)
        app = make_app(name, 2, scale=1e-4, seed=0)
        measured = sum(pack(app.shard(r)).nbytes for r in range(2))
        rows.append([name, d.programming_model, d.table2_configuration,
                     d.memory_pressure, d.declared_bytes_per_core, measured])
    return rows


def test_table2_miniapp_config(benchmark, emit):
    rows = benchmark(_build_rows)

    emit(format_table(
        ["mini-app", "model", "config (per core)", "memory pressure",
         "declared bytes/core", "measured bytes (scaled, 2 nodes)"],
        rows,
        title="Table 2: mini-application configuration",
    ))

    by = {r[0]: r for r in rows}
    assert by["jacobi3d-charm"][3] == "high"
    assert by["hpccg"][3] == "high"
    assert by["lulesh"][3] == "high"
    assert by["leanmd"][3] == "low"
    assert by["minimd"][3] == "low"
    # Declared footprints follow Table 2's configurations.
    assert by["jacobi3d-charm"][4] == 64 * 64 * 128 * 8
    assert by["leanmd"][4] == 4000 * 6 * 8
    assert by["minimd"][4] == 1000 * 6 * 8
    # High-pressure apps dwarf the MD apps by orders of magnitude.
    assert by["jacobi3d-charm"][4] > 20 * by["leanmd"][4]
    # Functional state really exists (scaled-down but non-trivial).
    assert all(r[5] > 100 for r in rows)
