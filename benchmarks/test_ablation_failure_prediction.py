"""Ablation — proactive checkpointing from failure prediction (paper §2.2).

"As online failure prediction becomes more accurate, checkpointing right
before a potential failure occurs can help increase the mean time between
failures visible to applications."

We hold the fault schedule fixed and sweep the predictor's recall: each
correctly-predicted fault triggers a dynamic checkpoint ``lead_time`` seconds
before impact, so the crashed replica replays only the lead time instead of
up to a whole checkpoint period.  Rework falls monotonically with recall.
"""

from repro.core import ACR, ACRConfig
from repro.core.prediction import FailurePredictor
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.harness.report import format_table
from repro.model import ResilienceScheme
from repro.util.rng import RngStream

#: Faults placed late in their 10 s checkpoint periods (worst case for
#: reactive recovery, best case for prediction), spaced far enough apart
#: that each recovery - including the Fig. 4(a) catch-up wait at the next
#: coordinated checkpoint - completes before the next fault.
FAULT_TIMES = (19.0, 119.0, 219.0, 319.0)


def _plan():
    return InjectionPlan([
        FaultEvent(time=t, kind=FaultKind.HARD, replica=i % 2, node_id=i % 4)
        for i, t in enumerate(FAULT_TIMES)
    ])


def _run(recall: float):
    plan = _plan()
    trace = None
    if recall > 0:
        trace = FailurePredictor(
            precision=0.9, recall=recall, lead_time=1.5,
            rng=RngStream(5, "ablation-pred"),
        ).predict(plan, horizon=400.0)
    config = ACRConfig(scheme=ResilienceScheme.STRONG,
                       checkpoint_interval=10.0, total_iterations=8000,
                       tasks_per_node=1, app_scale=1e-4, seed=7,
                       spare_nodes=16)
    acr = ACR("jacobi3d-charm", nodes_per_replica=4, config=config,
              injection_plan=plan, prediction_trace=trace)
    return acr.run(until=5000.0, max_events=50_000_000)


def _sweep():
    return {recall: _run(recall) for recall in (0.0, 0.5, 1.0)}


def test_ablation_failure_prediction(benchmark, emit):
    results = benchmark.pedantic(_sweep, iterations=1, rounds=1)

    emit(format_table(
        ["predictor recall", "alarms", "ckpts", "rework iters",
         "makespan (s)", "correct"],
        [[recall, r.prediction_alarms, r.checkpoints_completed,
          r.rework_iterations, round(r.final_time, 2), r.result_correct]
         for recall, r in sorted(results.items())],
        title="Ablation: proactive checkpoints from failure prediction "
              "(4 faults, each ~9 s after the last periodic checkpoint)",
    ))

    r0, r5, r10 = results[0.0], results[0.5], results[1.0]
    assert all(r.result_correct for r in results.values())
    # Rework falls monotonically with recall; perfect prediction cuts the
    # blind baseline's rework by well over half.
    assert r0.rework_iterations > r5.rework_iterations > r10.rework_iterations
    assert r10.rework_iterations < 0.5 * r0.rework_iterations
    assert r10.prediction_alarms >= 4
