"""Shared benchmark plumbing.

Benchmarks print the same rows/series the paper's figures plot; ``emit``
writes through pytest's capture (including the default fd-level capture) so
the tables land on the real stdout — the terminal, or ``bench_output.txt``
when the run is tee'd.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capfd):
    """Print a report table bypassing pytest's output capture."""

    def _emit(text: str) -> None:
        with capfd.disabled():
            print("\n" + text, flush=True)

    return _emit
