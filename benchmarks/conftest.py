"""Shared benchmark plumbing.

Benchmarks print the same rows/series the paper's figures plot; ``emit``
writes through pytest's capture (including the default fd-level capture) so
the tables land on the real stdout — the terminal, or ``bench_output.txt``
when the run is tee'd.

``campaign_cache`` gives the campaign-driven benchmarks a result store: set
``REPRO_BENCH_CACHE=/some/dir`` to persist simulated cells across benchmark
invocations (a CI job can restore the directory and turn the multi-seed
sweeps into pure cache reads); unset, each session gets a throwaway store so
cache-path code is still exercised without cross-run reuse.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def emit(capfd):
    """Print a report table bypassing pytest's output capture."""

    def _emit(text: str) -> None:
        with capfd.disabled():
            print("\n" + text, flush=True)

    return _emit


@pytest.fixture
def campaign_cache(tmp_path_factory):
    """A ResultStore for campaign benchmarks (see module docstring)."""
    from repro.store import ResultStore

    root = os.environ.get("REPRO_BENCH_CACHE")
    if root:
        return ResultStore(root)
    return ResultStore(tmp_path_factory.mktemp("campaign-cache"))
